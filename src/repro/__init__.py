"""repro -- Improved Worst-Case Deterministic Parallel Dynamic MSF.

A full reimplementation of Kopelowitz, Porat & Rosenmutter (SPAA 2018):

* :class:`repro.DynamicMSF` -- the top-level fully dynamic minimum spanning
  forest for general graphs (sequential or EREW-PRAM engine, optional
  sparsification);
* :class:`repro.SparseDynamicMSF` -- the sequential degree-3 core engine
  (Theorem 1.2);
* :class:`repro.ParallelDynamicMSF` -- the EREW PRAM engine (Theorem 3.1)
  running on :class:`repro.pram.machine.Machine`, a lockstep simulator that
  verifies exclusive access and measures depth/work;
* :class:`repro.SparsifiedMSF` -- Eppstein et al. sparsification (Sec. 5);
* :class:`repro.DegreeReducer` -- dynamic Frederickson degree-3 reduction.

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-claim vs. measured results.
"""

from .core.degree import DegreeReducer
from .core.msf import DynamicMSF
from .core.par import ParallelDynamicMSF
from .core.seq_msf import SparseDynamicMSF
from .core.sparsify import SparsifiedMSF
from .pram.machine import ErewViolation, KernelStats, Machine
from .serve import BatchedMSF, ClusterMSF, LevelExecutor

__version__ = "1.2.0"

__all__ = [
    "DynamicMSF",
    "BatchedMSF",
    "ClusterMSF",
    "SparseDynamicMSF",
    "ParallelDynamicMSF",
    "SparsifiedMSF",
    "DegreeReducer",
    "LevelExecutor",
    "Machine",
    "KernelStats",
    "ErewViolation",
    "__version__",
]
