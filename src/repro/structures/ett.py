"""Euler-tour forests on balanced 2-3 trees (the HDT substrate).

A lighter cousin of the chunked Euler-tour machinery in ``repro.core``:
tours are stored directly as 2-3 trees whose leaves are occurrences, with
aggregates supporting the queries Holm-de Lichtenberg-Thorup connectivity
needs per level:

* ``size``          -- number of vertices (active occurrences) in a tree;
* vertex flags      -- "this vertex stores level-i non-tree edges";
* edge markers      -- "this tree edge has level exactly i";
* ``find``/``iter`` over flagged vertices / marked edges of a tree.

Each vertex owns one **active** occurrence carrying its flag; each tree
edge owns two arcs (ordered occurrence pairs that are cyclically adjacent)
and an optional marker hosted on its ``arc_uv`` source occurrence.  Link
and cut use the same O(1)-splits-and-joins algebra as ``repro.core.euler``.
"""

from __future__ import annotations

from typing import Any, Iterator, Optional

from . import two_three_tree as tt

__all__ = ["EulerTourForest", "EttEdge"]


class _Occ:
    __slots__ = ("vertex", "leaf", "active", "vflag", "markers", "hosted")

    def __init__(self, vertex: int) -> None:
        self.vertex = vertex
        self.leaf: tt.Node = tt.leaf(self)
        self.active = False
        self.vflag = False
        self.markers = 0  # marked tree edges hosted here
        self.hosted: set = set()  # EttEdges whose marker lives here

    def agg(self) -> tuple[int, bool, int]:
        return (1 if self.active else 0,
                self.active and self.vflag,
                self.markers)


class EttEdge:
    """Per-forest record of one tree edge."""

    __slots__ = ("u", "v", "data", "arc_uv", "arc_vu", "marked", "host")

    def __init__(self, u: int, v: int, data: Any) -> None:
        self.u = u
        self.v = v
        self.data = data
        self.arc_uv: Optional[tuple[_Occ, _Occ]] = None
        self.arc_vu: Optional[tuple[_Occ, _Occ]] = None
        self.marked = False
        self.host: Optional[_Occ] = None  # occurrence carrying the marker


def _pull(node: tt.Node) -> None:
    # Hot-loop hygiene: leaf aggregates are computed inline (no ``agg()``
    # tuple allocation per kid), and an internal vertex's aggregate is a
    # mutable list updated in place -- ``_pull`` runs on every 2-3-tree
    # vertex each structural mutation touches, so the old per-call tuple
    # allocations dominated ETT-heavy workloads.
    size = 0
    vflag = False
    markers = 0
    for kid in node.kids:
        if kid.height:
            s, f, m = kid.agg
            size += s
            vflag = vflag or f
            markers += m
        else:
            occ = kid.item
            if occ.active:
                size += 1
                vflag = vflag or occ.vflag
            markers += occ.markers
    agg = node.agg
    if agg.__class__ is list:
        agg[0] = size
        agg[1] = vflag
        agg[2] = markers
    else:
        node.agg = [size, vflag, markers]


def _leaf_agg(leaf: tt.Node) -> tuple[int, bool, int]:
    return leaf.item.agg()


def _node_agg(node: tt.Node) -> tuple[int, bool, int]:
    return node.item.agg() if node.is_leaf else node.agg


class EulerTourForest:
    """A forest over vertices ``0..n-1`` with flags/markers per tree."""

    def __init__(self, n: int) -> None:
        self.n = n
        self.active: list[_Occ] = []
        for v in range(n):
            occ = _Occ(v)
            occ.active = True
            self.active.append(occ)
        # tree-adjacency lookup for arc repatching on seam merges
        self._tree_edge: dict[tuple[int, int], EttEdge] = {}
        self.ops = 0

    # ------------------------------------------------------------ basics

    def _root(self, occ: _Occ) -> tt.Node:
        self.ops += 1
        return tt.root_of(occ.leaf)

    def tree_root(self, v: int) -> tt.Node:
        return self._root(self.active[v])

    def connected(self, u: int, v: int) -> bool:
        return self.tree_root(u) is self.tree_root(v)

    def size(self, v: int) -> int:
        return _node_agg(self.tree_root(v))[0]

    def _refresh(self, occ: _Occ) -> None:
        tt.refresh_upward(occ.leaf, _pull)
        self.ops += 1

    # ------------------------------------------------------------ flags

    def set_vertex_flag(self, v: int, flag: bool) -> None:
        occ = self.active[v]
        if occ.vflag != flag:
            occ.vflag = flag
            self._refresh(occ)

    def set_edge_marker(self, e: EttEdge, marked: bool) -> None:
        if e.marked == marked:
            return
        e.marked = marked
        host = e.host
        assert host is not None, "marker on an edge not in this forest"
        host.markers += 1 if marked else -1
        self._refresh(host)

    def iter_flagged_vertices(self, root: tt.Node) -> Iterator[int]:
        """All flagged vertices in the tree of ``root`` (O(found * log))."""
        yield from self._iter(root, which=1)

    def iter_marked_edges(self, root: tt.Node) -> Iterator[EttEdge]:
        for occ in self._iter(root, which=2, occs=True):
            # an occurrence can host several marked edges
            for e in self._edges_hosted(occ):
                yield e

    def _edges_hosted(self, occ: _Occ) -> list[EttEdge]:
        return [e for e in occ.hosted if e.marked]

    def _iter(self, node: tt.Node, which: int, occs: bool = False):
        """DFS guided by aggregates; which=1: vflag, which=2: markers."""
        stack = [node]
        while stack:
            cur = stack.pop()
            agg = _node_agg(cur)
            hit = agg[1] if which == 1 else agg[2] > 0
            if not hit:
                continue
            self.ops += 1
            if cur.is_leaf:
                occ = cur.item
                yield occ if occs else occ.vertex
            else:
                stack.extend(reversed(cur.kids))

    # ------------------------------------------------------------ link/cut

    def link(self, u: int, v: int, data: Any = None) -> EttEdge:
        """Join the trees of u and v with a new tree edge."""
        assert not self.connected(u, v)
        e = EttEdge(u, v, data)
        u_star = self.active[u]
        v_star = self.active[v]
        # rotate Euler(T_v) to start at v_star
        prev = tt.prev_leaf(v_star.leaf)
        if prev is not None:
            left, right = tt.split_after(prev.item.leaf, _pull)
            tt.join(right, left, _pull)
        v_single = tt.root_of(v_star.leaf).is_leaf
        u_single = tt.root_of(u_star.leaf).is_leaf
        end_v = v_star
        if not v_single:
            old_tail = tt.last_leaf(tt.root_of(v_star.leaf)).item
            v_new = _Occ(v)
            # (return value is the possibly-new tree root; unused here)
            tt.insert_after(old_tail.leaf, v_new.leaf, _pull)
            self._retarget((old_tail, v_star), (old_tail, v_new))
            end_v = v_new
        u_new: Optional[_Occ] = None
        if not u_single:
            nxt = tt.next_leaf(u_star.leaf)
            succ = (nxt.item if nxt is not None
                    else tt.first_leaf(tt.root_of(u_star.leaf)).item)
            u_new = _Occ(u)
            tt.insert_after(u_star.leaf, u_new.leaf, _pull)
            self._retarget((u_star, succ), (u_new, succ))
        # splice [.. u*] ++ [v* .. end_v] ++ [u_new ..]
        rv = tt.root_of(v_star.leaf)
        if u_single:
            tt.join(u_star.leaf, rv, _pull)
        else:
            left, right = tt.split_after(u_star.leaf, _pull)
            mid = tt.join(left, rv, _pull)
            tt.join(mid, right, _pull)
        e.arc_uv = (u_star, v_star)
        e.arc_vu = (end_v, u_new if u_new is not None else u_star)
        e.host = u_star
        u_star.hosted.add(e)
        self._tree_edge[self._key(u, v)] = e
        self.ops += 8
        return e

    def cut(self, e: EttEdge) -> None:
        """Remove tree edge ``e``, splitting its tree in two."""
        assert e.arc_uv is not None and e.arc_vu is not None
        if e.marked:
            self.set_edge_marker(e, False)
        a_u, b_v = e.arc_uv
        c_v, d_u = e.arc_vu
        # rotate so the list is [b_v ... a_u]
        if tt.next_leaf(a_u.leaf) is not None:
            left, right = tt.split_after(a_u.leaf, _pull)
            tt.join(right, left, _pull)
        sv, su = tt.split_after(c_v.leaf, _pull)
        assert su is not None
        if a_u is not d_u:
            if a_u.active:
                self._drop_seam(keep=a_u, drop=d_u, drop_is_tail=False)
            else:
                self._drop_seam(keep=d_u, drop=a_u, drop_is_tail=True)
        if b_v is not c_v:
            if b_v.active:
                self._drop_seam(keep=b_v, drop=c_v, drop_is_tail=True)
            else:
                self._drop_seam(keep=c_v, drop=b_v, drop_is_tail=False)
        e.arc_uv = None
        e.arc_vu = None
        assert e.host is not None
        e.host.hosted.discard(e)
        e.host = None
        del self._tree_edge[self._key(e.u, e.v)]
        self.ops += 8

    # ------------------------------------------------------------ internals

    @staticmethod
    def _key(u: int, v: int) -> tuple[int, int]:
        return (u, v) if u < v else (v, u)

    def _retarget(self, old: tuple[_Occ, _Occ], new: tuple[_Occ, _Occ]) -> None:
        x, y = old
        g = self._tree_edge[self._key(x.vertex, y.vertex)]
        if g.arc_uv is not None and g.arc_uv[0] is x and g.arc_uv[1] is y:
            g.arc_uv = new
        elif g.arc_vu is not None and g.arc_vu[0] is x and g.arc_vu[1] is y:
            g.arc_vu = new
        else:  # pragma: no cover
            raise AssertionError("arc bookkeeping corrupted")

    def _drop_seam(self, keep: _Occ, drop: _Occ, drop_is_tail: bool) -> None:
        assert keep.vertex == drop.vertex and not drop.active
        if drop_is_tail:
            prev = tt.prev_leaf(drop.leaf).item
            self._retarget((prev, drop), (prev, keep))
        else:
            nxt = tt.next_leaf(drop.leaf).item
            self._retarget((drop, nxt), (keep, nxt))
        # edges hosted on the dropped occurrence move to the kept one
        if drop.hosted:
            for g in drop.hosted:
                g.host = keep
                keep.hosted.add(g)
                if g.marked:
                    keep.markers += 1
            drop.hosted.clear()
            drop.markers = 0
            self._refresh(keep)
        tt.delete_leaf(drop.leaf, _pull)
        self.ops += 4
