"""Link-cut trees with path-maximum aggregation (Sleator & Tarjan [19]).

The dynamic-MSF algorithm needs exactly one query from dynamic trees
(Section 2.6): *given u, v in the same MSF tree, find the heaviest edge on
the u..v path* (to decide whether an inserted non-tree edge displaces a tree
edge), plus links/cuts mirroring the forest updates.

We represent **edges as nodes**: inserting tree edge ``e = (u, v)`` creates
an LCT node for ``e`` linked between the nodes of ``u`` and ``v``.  Vertex
nodes carry a ``-inf`` sentinel key so a path-max query always returns an
edge node.  Keys are ``(weight, edge_id)`` tuples, giving a strict total
order (ties broken by id), so the maintained MSF is unique and testable
against an oracle.

Substitution note (documented in DESIGN.md): the paper cites the *worst
case* ``O(log n)`` variant of ST-trees; we implement the standard
splay-tree-based variant whose bounds are amortized ``O(log n)``.  This only
affects the lower-order ``log n`` term of update costs; experiment E1
reports structure-op counts with and without the LCT contribution.
"""

from __future__ import annotations

from typing import Any, Optional

__all__ = ["LCTNode", "LinkCutForest"]

# Sentinel smaller than any (weight, id) key, including -inf gadget weights:
# tuple comparison makes ("-inf",) < ("-inf", id).
_MIN_KEY: tuple = (float("-inf"),)


class LCTNode:
    """One vertex of the represented forest (a graph vertex or an edge)."""

    __slots__ = ("parent", "left", "right", "flip", "key", "mx", "label",
                 "idx")

    def __init__(self, key: tuple = _MIN_KEY, label: Any = None) -> None:
        self.parent: Optional[LCTNode] = None
        self.left: Optional[LCTNode] = None
        self.right: Optional[LCTNode] = None
        self.flip = False
        self.key = key
        self.mx: LCTNode = self  # node attaining max key in this splay subtree
        self.label = label
        #: slot index in the compiled tier's flat mirror (unused here)
        self.idx = -1

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<LCTNode {self.label!r} key={self.key!r}>"


def _is_splay_root(x: LCTNode) -> bool:
    p = x.parent
    return p is None or (p.left is not x and p.right is not x)


def _push(x: LCTNode) -> None:
    if x.flip:
        x.left, x.right = x.right, x.left
        if x.left is not None:
            x.left.flip = not x.left.flip
        if x.right is not None:
            x.right.flip = not x.right.flip
        x.flip = False


def _pull(x: LCTNode) -> None:
    best = x
    if x.left is not None and x.left.mx.key > best.key:
        best = x.left.mx
    if x.right is not None and x.right.mx.key > best.key:
        best = x.right.mx
    x.mx = best


def _rotate(x: LCTNode) -> None:
    p = x.parent
    assert p is not None
    g = p.parent
    left_child = p.left is x
    b = x.right if left_child else x.left
    # attach b where x was
    if left_child:
        p.left = b
        x.right = p
    else:
        p.right = b
        x.left = p
    if b is not None:
        b.parent = p
    p.parent = x
    x.parent = g
    if g is not None:
        if g.left is p:
            g.left = x
        elif g.right is p:
            g.right = x
        # else: p was a splay root (path-parent pointer); leave g's kids alone
    _pull(p)
    _pull(x)


def _splay(x: LCTNode) -> None:
    # push flips top-down along the root path first
    path = [x]
    cur = x
    while not _is_splay_root(cur):
        cur = cur.parent  # type: ignore[assignment]
        path.append(cur)
    for node in reversed(path):
        _push(node)
    while not _is_splay_root(x):
        p = x.parent
        assert p is not None
        if not _is_splay_root(p):
            g = p.parent
            assert g is not None
            if (g.left is p) == (p.left is x):
                _rotate(p)  # zig-zig
            else:
                _rotate(x)  # zig-zag
        _rotate(x)


class LinkCutForest:
    """A forest of LCT nodes with evert, link, cut, and path-max.

    The class is a thin namespace over node operations plus an operation
    counter (`ops`) used by the cost-accounting experiments.
    """

    def __init__(self) -> None:
        self.ops = 0  # number of splay steps, a proxy for LCT work

    # -- node lifecycle ----------------------------------------------------
    # The engines allocate nodes through the forest so the compiled tier's
    # flat-mirror twin (core.compiled.lct) can slot-manage them; here the
    # factory is a plain constructor call and discard is a no-op.

    def make_node(self, key: tuple = _MIN_KEY, label: Any = None) -> LCTNode:
        return LCTNode(key=key, label=label)

    def discard(self, node: LCTNode) -> None:
        pass

    # -- internals ---------------------------------------------------------

    def _access(self, x: LCTNode) -> LCTNode:
        """Make the root..x path preferred; x becomes its splay root."""
        _splay(x)
        # drop x's preferred right subtree (deeper part of old path)
        if x.right is not None:
            x.right.parent = x  # stays as path-parent pointer
            x.right = None
            _pull(x)
        last = x
        while x.parent is not None:
            y = x.parent
            _splay(y)
            if y.right is not None:
                y.right.parent = y
            y.right = x
            _pull(y)
            _splay(x)
            last = y
            self.ops += 1
        self.ops += 1
        return last

    # -- public API ---------------------------------------------------------

    def make_root(self, x: LCTNode) -> None:
        """Evert: make ``x`` the root of its represented tree."""
        self._access(x)
        x.flip = not x.flip
        _push(x)

    def find_root(self, x: LCTNode) -> LCTNode:
        self._access(x)
        while True:
            _push(x)
            if x.left is None:
                break
            x = x.left
        _splay(x)
        return x

    def connected(self, x: LCTNode, y: LCTNode) -> bool:
        if x is y:
            return True
        return self.find_root(x) is self.find_root(y)

    def link(self, x: LCTNode, y: LCTNode) -> None:
        """Attach the tree of ``x`` to ``y`` (x and y must be disconnected)."""
        self.make_root(x)
        x.parent = y  # path-parent pointer

    def cut(self, x: LCTNode, y: LCTNode) -> None:
        """Remove the represented edge between adjacent nodes x and y."""
        self.make_root(x)
        self._access(y)
        # x is now exactly y's left child in the preferred path
        assert y.left is x and x.right is None, "cut() on non-adjacent nodes"
        y.left.parent = None
        y.left = None
        _pull(y)

    def path_max(self, x: LCTNode, y: LCTNode) -> LCTNode:
        """Node with the maximum key on the x..y path (must be connected)."""
        self.make_root(x)
        self._access(y)
        return y.mx

    # -- edge-as-node convenience -------------------------------------------

    def link_edge(self, enode: LCTNode, u: LCTNode, v: LCTNode) -> None:
        """Insert isolated edge node ``enode`` between ``u`` and ``v``."""
        self.link(enode, u)
        self.link(v, enode)

    def cut_edge(self, enode: LCTNode, u: LCTNode, v: LCTNode) -> None:
        """Remove edge node ``enode`` lying between ``u`` and ``v``."""
        self.cut(enode, u)
        self.cut(enode, v)
