"""Worst-case balanced 2-3 trees over a *sequence* of leaves.

This is the balanced-tree backbone used twice by the paper:

* the LSDS (Section 2.2) is "implemented as a 2-3 tree whose leaves
  correspond, in order, to the chunks of L" with entrywise min/OR vector
  aggregates per internal vertex, and
* each chunk's ``BT_c`` (Section 3) is a 2-3 tree over the occurrences of the
  chunk with *edge counter* aggregates.

The tree here is positional (no keys): leaves appear in list order and the
operations are exactly the ones Lemmas 2.3/3.2 need -- insert a leaf after a
given leaf, delete a leaf, split the sequence after a leaf, and join two
sequences.  All operations touch ``O(log n)`` tree vertices in the worst
case; every touched vertex is reported to a pluggable aggregation hook so
the caller can charge the per-vertex vector work the paper's cost analysis
charges (``O(J)`` per touched LSDS vertex, ``O(1)`` per touched ``BT_c``
vertex).

Aggregation protocol
--------------------
Operations accept a ``pull`` callable.  After any structural change the
implementation calls ``pull(node)`` bottom-up for every internal vertex
whose child set changed, so ``pull`` may recompute ``node.agg`` from
``node.kids``.  Leaves own their ``agg`` (the caller sets it and calls
:func:`refresh_upward` when it changes).
"""

from __future__ import annotations

from typing import Any, Callable, Iterator, Optional

from ..resilience import faults as _faults

__all__ = [
    "Node",
    "leaf",
    "root_of",
    "height_of",
    "first_leaf",
    "last_leaf",
    "next_leaf",
    "prev_leaf",
    "iter_leaves",
    "iter_nodes",
    "count_leaves",
    "insert_after",
    "insert_first",
    "build_rightmost",
    "delete_leaf",
    "join",
    "split_after",
    "refresh_upward",
    "refresh_upward_changed",
    "validate",
]

Pull = Callable[["Node"], None]


def _noop_pull(node: "Node") -> None:  # default aggregation hook
    return None


class Node:
    """A 2-3 tree vertex.

    Internal vertices hold 2 or 3 children in ``kids`` (transiently 1 or 4
    during rebalancing).  Leaves have ``kids == []`` and carry a caller
    payload in ``item``.  ``agg`` is caller-owned aggregate storage.
    """

    __slots__ = ("parent", "kids", "item", "agg", "height", "pos", "scache")

    def __init__(self, item: Any = None, height: int = 0) -> None:
        self.parent: Optional[Node] = None
        self.kids: list[Node] = []
        self.item = item
        self.agg: Any = None
        self.height = height
        # Index of this node in parent.kids.  Maintained by every mutation so
        # EREW PRAM kernels can test "am I the leftmost child?" by reading a
        # cell only *they* touch (the paper's column-sweep survivor rule).
        self.pos = 0
        # Caller-owned *structural shape cache* for this subtree (used by
        # ``repro.core.par.kernels`` as a ``(tag, shape)`` pair).  The
        # invariant maintained here: every mutation that changes the
        # structure of a subtree -- or a leaf aggregate reported via
        # :func:`refresh_upward` -- sets ``scache = None`` on the changed
        # vertex and on every vertex the rebalancing/refresh walk visits
        # above it.  All mutation paths already walk changed-vertex ->
        # root (``_fix_overflow`` / ``_fix_underflow`` / ``split_after``'s
        # dissolve / ``refresh_upward``), so invalidation is O(1) per
        # vertex the operation touches anyway, and an untouched subtree
        # keeps its cached shape valid: shape-key computation becomes
        # O(changed path) amortized instead of O(tree).
        self.scache: Any = None

    @property
    def is_leaf(self) -> bool:
        return self.height == 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = "Leaf" if self.is_leaf else f"Node(h={self.height})"
        return f"<{kind} item={self.item!r}>"


def leaf(item: Any, agg: Any = None) -> Node:
    """Create a detached leaf carrying ``item`` with initial aggregate."""
    node = Node(item=item, height=0)
    node.agg = agg
    return node


# ---------------------------------------------------------------------------
# navigation
# ---------------------------------------------------------------------------

def root_of(node: Node) -> Node:
    """Walk parent pointers to the root: O(log n)."""
    while node.parent is not None:
        node = node.parent
    return node


def height_of(root: Optional[Node]) -> int:
    return -1 if root is None else root.height


def first_leaf(root: Optional[Node]) -> Optional[Node]:
    if root is None:
        return None
    while root.height:  # hot path: avoid the is_leaf property dispatch
        root = root.kids[0]
    return root


def last_leaf(root: Optional[Node]) -> Optional[Node]:
    if root is None:
        return None
    while root.height:
        root = root.kids[-1]
    return root


def _sibling_step(node: Node, direction: int) -> Optional[Node]:
    """Next (+1) / previous (-1) leaf in sequence order, O(log n).

    Uses the maintained ``pos`` child index instead of the old
    ``p.kids.index(cur)`` linear scan (every mutation keeps ``pos`` fresh;
    ``validate`` asserts it).
    """
    cur = node
    while cur.parent is not None:
        p = cur.parent
        j = cur.pos + direction
        if 0 <= j < len(p.kids):
            sub = p.kids[j]
            return first_leaf(sub) if direction > 0 else last_leaf(sub)
        cur = p
    return None


def next_leaf(node: Node) -> Optional[Node]:
    return _sibling_step(node, +1)


def prev_leaf(node: Node) -> Optional[Node]:
    return _sibling_step(node, -1)


def iter_leaves(root: Optional[Node]) -> Iterator[Node]:
    if root is None:
        return
    stack = [root]
    out: list[Node] = []
    # explicit stack, reversed-push DFS keeps sequence order; the inline
    # ``not kids`` test avoids the is_leaf property dispatch in this hot path
    while stack:
        node = stack.pop()
        kids = node.kids
        if not kids:
            out.append(node)
        else:
            stack.extend(reversed(kids))
    yield from out


def iter_nodes(root: Optional[Node]) -> Iterator[Node]:
    """All vertices (internal + leaves), parent before child."""
    if root is None:
        return
    stack = [root]
    while stack:
        node = stack.pop()
        yield node
        stack.extend(node.kids)


def count_leaves(root: Optional[Node]) -> int:
    return sum(1 for _ in iter_leaves(root))


# ---------------------------------------------------------------------------
# aggregation plumbing
# ---------------------------------------------------------------------------

def refresh_upward(node: Node, pull: Pull) -> None:
    """Re-pull aggregates on the path from ``node``'s parent to the root.

    Called after a leaf aggregate changed in place.  Touches O(log n)
    vertices -- with LSDS vector pulls this is the O(J log J) path-refresh
    of operation ``UpdateAdj`` (Lemma 2.3).
    """
    node.scache = None  # leaf aggregates feed BT_c shape keys
    cur = node.parent
    while cur is not None:
        cur.scache = None
        pull(cur)
        cur = cur.parent
    if _faults.armed:  # post-refresh aggregate corruption site
        _faults.fire("tt.agg", node=node)


def refresh_upward_changed(node: Node,
                           pull_changed: Callable[["Node"], bool]) -> None:
    """Early-exit variant of :func:`refresh_upward`.

    ``pull_changed(v)`` recomputes ``v.agg`` from its children and returns
    ``True`` iff the stored aggregate actually changed.  Because every
    internal aggregate is a pure function of its children's aggregates,
    an unchanged vertex implies every ancestor is already consistent, so
    the walk stops -- the worst case stays O(log n) pulls, but localized
    leaf changes (the common ``UpdateAdj`` after a single matrix-entry
    update) usually terminate after one or two vertices.
    """
    cur = node.parent
    while cur is not None and pull_changed(cur):
        cur = cur.parent
    if _faults.armed:  # post-refresh aggregate corruption site
        _faults.fire("tt.agg", node=node)


def _reindex(parent: Node) -> None:
    i = 0
    for kid in parent.kids:
        kid.pos = i
        i += 1


def _attach(parent: Node, pos: int, child: Node) -> None:
    kids = parent.kids
    kids.insert(pos, child)
    parent.scache = None
    child.parent = parent
    # only children at index >= pos moved; reindex the suffix
    for i in range(pos, len(kids)):
        kids[i].pos = i


def _detach_from_parent(node: Node) -> None:
    p = node.parent
    if p is not None:
        kids = p.kids
        i = node.pos
        if 0 <= i < len(kids) and kids[i] is node:  # pos is maintained hot
            del kids[i]
        else:  # defensive: fall back to a scan
            kids.remove(node)
            i = 0
        p.scache = None
        node.parent = None
        for k in range(i, len(kids)):
            kids[k].pos = k


def _fix_overflow(node: Node, pull: Pull) -> Node:
    """Split vertices with 4 children, walking to the root; return root."""
    while True:
        node.scache = None
        if len(node.kids) <= 3:
            if node.height:
                pull(node)
            if node.parent is None:
                return node
            node = node.parent
            continue
        # split 4 children into 2+2
        right = Node(height=node.height)
        moved = node.kids[2:]
        node.kids = node.kids[:2]
        for child in moved:
            child.parent = right
        right.kids = moved
        _reindex(node)
        _reindex(right)
        pull(node)
        pull(right)
        p = node.parent
        if p is None:
            new_root = Node(height=node.height + 1)
            _attach(new_root, 0, node)
            _attach(new_root, 1, right)
            pull(new_root)
            return new_root
        _attach(p, node.pos + 1, right)
        node = p


# ---------------------------------------------------------------------------
# insert / delete
# ---------------------------------------------------------------------------

def insert_after(after: Node, new_leaf: Node, pull: Pull = _noop_pull) -> Node:
    """Insert detached ``new_leaf`` right after leaf ``after``; return root."""
    assert after.is_leaf and new_leaf.is_leaf and new_leaf.parent is None
    p = after.parent
    if p is None:
        root = Node(height=1)
        _attach(root, 0, after)
        _attach(root, 1, new_leaf)
        pull(root)
        return root
    _attach(p, after.pos + 1, new_leaf)
    return _fix_overflow(p, pull)


def insert_first(root: Optional[Node], new_leaf: Node, pull: Pull = _noop_pull) -> Node:
    """Insert detached ``new_leaf`` as the first leaf of ``root``'s tree."""
    assert new_leaf.is_leaf and new_leaf.parent is None
    if root is None:
        return new_leaf
    head = first_leaf(root)
    assert head is not None
    p = head.parent
    if p is None:  # tree was a single leaf
        new_root = Node(height=1)
        _attach(new_root, 0, new_leaf)
        _attach(new_root, 1, head)
        pull(new_root)
        return new_root
    _attach(p, 0, new_leaf)
    return _fix_overflow(p, pull)


def build_rightmost(leaves: list[Node], pull: Pull = _noop_pull, *,
                    collect_levels: Optional[list] = None) -> Optional[Node]:
    """Build, in O(n), the exact tree that inserting ``leaves`` left to
    right with :func:`insert_after` (each after the current last leaf)
    would produce.

    Repeated rightmost insertion is deterministic: every overflow happens
    on the rightmost spine and splits 4 children into 2+2 exactly like
    ``_fix_overflow``, so the resulting shape is a pure function of
    ``len(leaves)``.  This builder simulates that evolution with a spine
    stack (O(1) amortized per leaf) and then runs **one** bottom-up
    ``pull`` pass -- internal aggregates are pure functions of child
    aggregates, so the final aggregates match the incremental
    construction's.  ``tests/structures`` pins shape *and* aggregate
    equality against the incremental build.

    When ``collect_levels`` is a list, each internal level's node list
    (height 1 first, left to right) is appended to it and ``pull`` is
    *not* called -- the caller batches the aggregate computation itself
    (the columnar backend's level-at-a-time ``np.add.reduceat`` path).
    Shapes are identical either way.

    The bulk path matters because ``ChunkSpace.adopt_occurrences``
    rebuilds each chunk's ``BT_c`` from scratch on every chunk surgery:
    the incremental loop costs O(K log K) with a root walk per leaf,
    the builder O(K).  Measured kernels (``getEdge``) read the BT
    structure, so shape equality is load-bearing: it keeps the PRAM
    depth/work of every engine bit-identical to the incremental build.
    """
    n = len(leaves)
    if n == 0:
        return None
    if n == 1:
        return leaves[0]
    level = leaves
    h = 1
    for sizes in _rightmost_template(n):
        nxt: list[Node] = []
        i = 0
        for sz in sizes:
            node = Node(height=h)
            kids = level[i:i + sz]
            i += sz
            node.kids = kids
            p = 0
            for c in kids:
                c.parent = node
                c.pos = p
                p += 1
            if collect_levels is None:
                pull(node)
            nxt.append(node)
        if collect_levels is not None:
            collect_levels.append(nxt)
        level = nxt
        h += 1
    return level[0]


#: memoized kid-count templates for :func:`build_rightmost`: the shape of
#: a rightmost-insertion tree is a pure function of the leaf count
_rightmost_templates: dict[int, tuple[tuple[int, ...], ...]] = {}


def _rightmost_template(n: int) -> tuple[tuple[int, ...], ...]:
    """Kid counts per level (height 1 first, left to right) of the tree
    produced by ``n`` rightmost insertions; derived by simulating the
    overflow cascade of ``_fix_overflow`` on integer counts."""
    tpl = _rightmost_templates.get(n)
    if tpl is not None:
        return tpl
    levels: list[list[int]] = [[2]]  # after the second leaf
    for _ in range(n - 2):
        levels[0][-1] += 1
        h = 0
        while levels[h][-1] == 4:  # split 4 kids into 2 + 2
            levels[h][-1] = 2
            levels[h].append(2)
            h += 1
            if h < len(levels):
                levels[h][-1] += 1  # right sibling joins the parent
            else:
                levels.append([2])  # root split: grow a level
                break
    tpl = tuple(tuple(lv) for lv in levels)
    _rightmost_templates[n] = tpl
    return tpl


def delete_leaf(target: Node, pull: Pull = _noop_pull) -> Optional[Node]:
    """Remove leaf ``target``; return the (possibly new / None) root."""
    assert target.is_leaf
    p = target.parent
    if p is None:
        return None  # tree was just this leaf
    _detach_from_parent(target)
    return _fix_underflow(p, pull)


def _fix_underflow(node: Node, pull: Pull) -> Node:
    """Repair vertices with a single child, walking to the root."""
    while True:
        node.scache = None
        if len(node.kids) >= 2:
            pull(node)
            if node.parent is None:
                return node
            node = node.parent
            continue
        p = node.parent
        if p is None:
            # root with one child: drop a level
            only = node.kids[0]
            only.parent = None
            node.kids = []
            return only
        i = node.pos
        sib = p.kids[i - 1] if i > 0 else p.kids[i + 1]
        if len(sib.kids) == 3:
            # borrow a child from the richer sibling
            if i > 0:
                moved = sib.kids.pop()
                node.kids.insert(0, moved)
            else:
                moved = sib.kids.pop(0)
                node.kids.append(moved)
            moved.parent = node
            sib.scache = None
            _reindex(sib)
            _reindex(node)
            pull(sib)
            pull(node)
            node = p
        else:
            # merge node into sibling (sibling has 2 children)
            donor = node.kids.pop(0)
            if i > 0:
                sib.kids.append(donor)
            else:
                sib.kids.insert(0, donor)
            donor.parent = sib
            sib.scache = None
            _reindex(sib)
            _detach_from_parent(node)
            pull(sib)
            node = p


# ---------------------------------------------------------------------------
# join / split
# ---------------------------------------------------------------------------

def join(left: Optional[Node], right: Optional[Node], pull: Pull = _noop_pull) -> Optional[Node]:
    """Concatenate two trees (all leaves of ``left`` before ``right``)."""
    if left is None:
        return right
    if right is None:
        return left
    hl, hr = left.height, right.height
    if hl == hr:
        root = Node(height=hl + 1)
        _attach(root, 0, left)
        _attach(root, 1, right)
        pull(root)
        return root
    if hl > hr:
        # descend the right spine of `left` to height hr + 1
        spot = left
        while spot.height > hr + 1:
            spot = spot.kids[-1]
        _attach(spot, len(spot.kids), right)
        return _fix_overflow(spot, pull)
    # hr > hl: descend the left spine of `right`
    spot = right
    while spot.height > hl + 1:
        spot = spot.kids[0]
    _attach(spot, 0, left)
    return _fix_overflow(spot, pull)


def _group(sibs: list[Node], pull: Pull) -> Node:
    """Form a valid tree out of 1-2 adjacent detached siblings."""
    if len(sibs) == 1:
        return sibs[0]
    root = Node(height=sibs[0].height + 1)
    for j, s in enumerate(sibs):
        _attach(root, j, s)
    pull(root)
    return root


def split_after(target: Node, pull: Pull = _noop_pull) -> tuple[Node, Optional[Node]]:
    """Split the tree containing leaf ``target`` right after it.

    Returns ``(left_root, right_root)``; ``target`` becomes the last leaf of
    the left tree, and ``right_root`` is ``None`` if ``target`` was already
    the last leaf.  Dissolves the root path and re-joins the sibling groups;
    heights telescope, so the total cost is O(log n) tree vertices.
    """
    assert target.is_leaf
    left_root: Optional[Node] = target
    right_root: Optional[Node] = None
    node: Node = target
    while node.parent is not None:
        p = node.parent
        # `pos` is an int snapshot: dissolving a vertex's children (below)
        # never touches the vertex's own pos, so the climb stays valid.
        idx = node.pos
        kids = list(p.kids)
        for c in kids:  # dissolve p
            c.parent = None
        p.kids = []
        p.scache = None
        left_sibs = kids[:idx]
        right_sibs = kids[idx + 1:]
        if left_sibs:
            left_root = join(_group(left_sibs, pull), left_root, pull)
        if right_sibs:
            grp = _group(right_sibs, pull)
            right_root = grp if right_root is None else join(right_root, grp, pull)
        # `p` stays linked under its own parent so position lookup works on
        # the next iteration; it is dropped when that parent dissolves.
        node = p
    assert left_root is not None
    return left_root, right_root


def validate(root: Optional[Node]) -> None:
    """Assert structural invariants; used heavily in tests."""
    if root is None:
        return
    assert root.parent is None
    leaf_depths: set[int] = set()

    def rec(node: Node, depth: int) -> None:
        if node.is_leaf:
            assert node.kids == []
            leaf_depths.add(depth)
            return
        assert 2 <= len(node.kids) <= 3, f"degree {len(node.kids)} at height {node.height}"
        for i, c in enumerate(node.kids):
            assert c.parent is node
            assert c.height == node.height - 1
            assert c.pos == i, "stale child-position index"
            rec(c, depth + 1)

    rec(root, 0)
    assert len(leaf_depths) <= 1, "leaves at different depths"
