"""Seeded fault-injection soak campaigns (experiment E11).

A campaign deterministically interleaves a serving workload with a
scheduled :class:`~repro.resilience.faults.FaultPlan` and checks the
resilience layer's end-to-end contract:

* every injected fault is **detected** (engine exception, wrong answer
  against the Kruskal oracle, or a tiered ``self_check`` finding) and
  **recovered** (the ladder in :mod:`repro.resilience.recover`), or it
  is **provably masked** -- the final full-tier audit is clean, the
  final forest matches the oracle edge-for-edge, and the recovered
  structure's :func:`~repro.resilience.checks.state_fingerprint` is
  bit-identical to a never-faulted twin replaying the same op stream;
* **zero wrong answers** survive recovery: any read that disagreed with
  the oracle must agree after the recovery that it triggered;
* recovery work is *charged* through the normal counters -- the report
  includes the mean per-recovery charged work so the cost of the ladder
  is a measured quantity, not a hand-wave.

Everything derives from the campaign seed: the op stream, the fault
schedule, and the check cadence -- replaying a seed reproduces the run
bit-for-bit (``pool_size=1`` keeps the batch executor on the serial
path, so scheduling cannot perturb the comparison).
"""

from __future__ import annotations

import json
import os
import random
import shutil
import signal
import subprocess
import sys
import tempfile
from typing import Optional

from ..reference.oracle import KruskalOracle
from ..serve.batched import BatchedMSF
from . import checks, faults, recover
from .errors import CorruptionError, QuarantineExhausted, WALCorruptionError

__all__ = ["SITES_BY_CONFIG", "DURABLE_SITES", "generate_ops",
           "run_campaign", "run_crash_campaign", "worker_mix_ops",
           "restart_heavy_ops"]

#: injection sites reachable per engine configuration (scheduling a fault
#: on an unreachable site would just report "unreached")
SITES_BY_CONFIG = {
    ("sequential", True): ["tt.agg", "arena.reset", "serve.batch",
                           "sparsify.weight"],
    ("sequential", False): ["tt.agg", "serve.batch"],
    ("parallel", True): ["pram.cell", "pram.plan", "pram.fingerprint",
                         "tt.agg", "arena.reset", "serve.batch",
                         "sparsify.weight"],
    ("parallel", False): ["pram.cell", "pram.plan", "pram.fingerprint",
                          "tt.agg", "serve.batch"],
}

#: crash-shaped sites reachable only when the front runs durability="wal"
DURABLE_SITES = ["wal.append", "wal.fsync", "snapshot.write"]


# ---------------------------------------------------------------- stream

def generate_ops(seed: int, n: int, n_ops: int, *,
                 recycle_every: int = 25) -> list[tuple]:
    """The deterministic op stream both the faulted run and its clean
    twin replay.  Edge ids are predicted (the front assigns them from a
    per-instance counter, so prediction is exact)."""
    rng = random.Random(seed ^ 0x5F5E1)
    ops: list[tuple] = []
    next_eid = 1
    live: list[int] = []
    for i in range(n_ops):
        if recycle_every and i and i % recycle_every == 0:
            ops.append(("recycle",))
            continue
        r = rng.random()
        if r < 0.48 or not live:
            u = rng.randrange(n)
            v = rng.randrange(n)
            w = round(rng.uniform(0.0, 100.0), 3)
            ops.append(("ins", u, v, w))
            live.append(next_eid)
            next_eid += 1
        elif r < 0.72:
            eid = live.pop(rng.randrange(len(live)))
            ops.append(("del", eid))
        elif r < 0.90:
            ops.append(("q", rng.randrange(n), rng.randrange(n)))
        else:
            ops.append(("w",))
    return ops


def worker_mix_ops(seed: int, n: int, n_ops: int, *, shards: int = 4,
                   cross_fraction: float = 0.05,
                   recycle_every: int = 25) -> list[tuple]:
    """The sharded serving workload (:func:`repro.workloads.worker_mix`)
    translated into the campaign op vocabulary with predicted edge ids,
    plus the usual arena-recycle interleaves.

    Deletions in the source stream reference the *op index* of the
    insert; the front assigns eids from a per-instance counter, so the
    translation is exact -- the same prediction contract
    :func:`generate_ops` relies on.
    """
    from ..workloads import worker_mix
    out: list[tuple] = []
    next_eid = 1
    eid_of: dict[int, int] = {}   # workload op index -> predicted eid
    stream = worker_mix(n, n_ops, shards=shards,
                        cross_fraction=cross_fraction,
                        seed=seed ^ 0x5F5E1)
    for idx, op in enumerate(stream):
        if recycle_every and out and len(out) % recycle_every == 0:
            out.append(("recycle",))
        if op[0] == "ins":
            out.append(op)
            eid_of[idx] = next_eid
            next_eid += 1
        elif op[0] == "del":
            out.append(("del", eid_of.pop(op[1])))
        elif op[0] == "conn":
            out.append(("q", op[1], op[2]))
        else:  # ("weight",)
            out.append(("w",))
    return out


def restart_heavy_ops(seed: int, n: int, n_ops: int, *, burst: int = 24,
                      churn: int = 16, recycle_every: int = 25) -> list[tuple]:
    """The durability-stressing workload (:func:`repro.workloads.
    restart_heavy`) translated into the campaign op vocabulary with
    predicted edge ids -- the same prediction contract as
    :func:`worker_mix_ops`.  ``recycle_every=0`` disables the arena
    recycles (the crash-restart child wants a pure serving stream)."""
    from ..workloads import restart_heavy
    out: list[tuple] = []
    next_eid = 1
    eid_of: dict[int, int] = {}   # workload op index -> predicted eid
    stream = restart_heavy(n, n_ops, burst=burst, churn=churn,
                           seed=seed ^ 0x5F5E1)
    for idx, op in enumerate(stream):
        if recycle_every and out and len(out) % recycle_every == 0:
            out.append(("recycle",))
        if op[0] == "ins":
            out.append(op)
            eid_of[idx] = next_eid
            next_eid += 1
        elif op[0] == "del":
            out.append(("del", eid_of.pop(op[1])))
        elif op[0] == "conn":
            out.append(("q", op[1], op[2]))
        else:  # ("weight",)
            out.append(("w",))
    return out


def _recycle(n: int, engine: str) -> None:
    """Build, touch and release a throwaway tree -- drives engines through
    the arena so the ``arena.reset`` site accumulates visits."""
    from ..core.msf import DynamicMSF
    t = DynamicMSF(max(4, n // 8), engine=engine, sparsify=True)
    t.insert_edge(0, 1, 1.0)
    t.insert_edge(1, 2, 2.0)
    t.insert_edge(0, 2, 3.0)
    t.release()


# ------------------------------------------------------------- recovery

def _machines(impl):
    if hasattr(impl, "nodes"):          # SparsifiedMSF
        for node in impl.nodes.values():
            if node.has_engine:
                machine = getattr(getattr(node.engine, "core", None),
                                  "machine", None)
                if machine is not None:
                    yield machine
    else:                               # DegreeReducer
        machine = getattr(getattr(impl, "core", None), "machine", None)
        if machine is not None:
            yield machine


def _set_fast_audit(impl) -> None:
    """Put every reachable machine on the ``fast`` tier.

    The ``pram.plan`` / ``pram.fingerprint`` sites live inside the replay
    and fingerprint-streaming tiers, which only engage under
    ``audit="fast"`` -- facade-built machines default to ``strict``, so a
    campaign that schedules those sites must flip the tier.  Called every
    iteration because sparsified backends create node engines lazily and
    a backend rebuild replaces the machines wholesale; the call is a
    cheap no-op once a machine is already fast."""
    for machine in _machines(impl):
        if machine.audit != "fast":
            machine.set_audit("fast")


def _charged_work(impl) -> int:
    """Total elementary work charged to the backend's own counters."""
    if hasattr(impl, "ops_by_node"):
        return sum(impl.ops_by_node().values())
    return impl.core.ops.grand_total()


def _recover_from_findings(front, findings) -> list[str]:
    """Route findings to the cheapest applicable rung of the ladder."""
    from ..core.sparsify import default_pool
    rungs: list[str] = []
    components = {f.component for f in findings}
    if "machine" in components:
        for machine in _machines(front._impl):
            recover.recover_machine(machine, degrade=False)
        rungs.append("machine-cache-purge")
    if "pool" in components:
        recover.recover_pool(default_pool)
        rungs.append("pool-sweep")
    if "durability" in components:
        recover.repair_wal(front)
        rungs.append("wal-repair")
    if components - {"machine", "pool", "durability"}:
        recover.rebuild_backend(front, level="cheap")
        rungs.append("backend-rebuild")
    return rungs


# ------------------------------------------------------------- campaign

def run_campaign(seed: int, *, engine: str = "sequential",
                 sparsify: bool = True, n: int = 48, n_ops: int = 320,
                 n_faults: int = 6, batch_size: int = 16,
                 check_every: int = 16,
                 sites: Optional[list[str]] = None,
                 horizon: Optional[int] = None,
                 workload: str = "default", shards: int = 4,
                 cross_fraction: float = 0.05,
                 backend: str = "scalar",
                 durability: str = "off",
                 durable_dir: Optional[str] = None,
                 snapshot_every: int = 8) -> dict:
    """One seeded soak campaign; returns the JSON-able report.

    ``workload`` selects the op stream: ``"default"`` is the classic
    uniform churn/read mix of :func:`generate_ops`; ``"worker_mix"`` is
    the sharded serving profile (clustered vertex ranges, ``shards`` /
    ``cross_fraction`` knobs) via :func:`worker_mix_ops`;
    ``"restart_heavy"`` is the bursty checkpoint-then-churn durability
    profile via :func:`restart_heavy_ops`.  ``backend`` selects the
    engine kernels; ``"columnar"`` adds the mirror-tearing
    ``columnar.col`` site to the default schedule (detected by the
    structural tier's array-vs-scalar cross-validation).

    ``durability="wal"`` runs the front with the write-ahead log and
    snapshots attached (under ``durable_dir``, or a private temporary
    directory), adds the crash-shaped :data:`DURABLE_SITES` to the
    default schedule, and extends the final verification with a
    restore-from-disk whose fingerprint must match the never-faulted
    twin bit-for-bit.
    """
    if durability not in ("off", "wal"):
        raise ValueError(f"durability must be 'off' or 'wal', "
                         f"got {durability!r}")
    if sites is None:
        sites = list(SITES_BY_CONFIG[(engine, sparsify)])
        if backend == "columnar":
            sites.append("columnar.col")
        elif backend == "compiled":
            sites.append("compiled.kernel")
        if durability == "wal":
            sites.extend(DURABLE_SITES)
    else:
        sites = list(sites)
    if workload == "worker_mix":
        ops = worker_mix_ops(seed, n, n_ops, shards=shards,
                             cross_fraction=cross_fraction)
    elif workload == "restart_heavy":
        ops = restart_heavy_ops(seed, n, n_ops)
    elif workload == "default":
        ops = generate_ops(seed, n, n_ops)
    else:
        raise ValueError(f"unknown workload {workload!r}")
    plan = faults.FaultPlan.scheduled(
        seed, sites=sites, n_faults=n_faults,
        horizon=horizon if horizon is not None else max(50, n_ops // 2),
        label=f"{engine}/{'sparse' if sparsify else 'flat'}/seed={seed}")

    temp_dir = None
    if durability == "wal" and durable_dir is None:
        durable_dir = temp_dir = tempfile.mkdtemp(prefix="repro-soak-wal-")
    front = BatchedMSF(n, engine=engine, sparsify=sparsify,
                       batch_size=batch_size, pool_size=1, backend=backend,
                       durability=durability, durable_dir=durable_dir,
                       snapshot_every=snapshot_every)
    oracle = KruskalOracle()
    detections: list[dict] = []
    recovery_costs: list[int] = []
    wrong_answers = 0
    unexpected_rejections = 0
    next_eid = 1

    def note_recovery(channel: str, op_index: int, detail: str,
                      rungs: list[str]) -> None:
        detections.append({"op": op_index, "channel": channel,
                           "detail": detail, "rungs": rungs})
        recovery_costs.append(_charged_work(front._impl))

    fast_tier = engine == "parallel"
    faults.arm(plan)
    try:
        for i, op in enumerate(ops):
            if fast_tier:
                _set_fast_audit(front._impl)
            if durability == "wal":
                front.durability.cursor = i    # source-stream resume point
            recoveries_before = front.stats["recoveries"]
            try:
                if op[0] == "ins":
                    _t, u, v, w = op
                    eid = front.insert_edge(u, v, w)
                    assert eid == next_eid  # prediction contract
                    oracle.insert(u, v, w, eid)
                    next_eid += 1
                elif op[0] == "del":
                    front.delete_edge(op[1])
                    oracle.delete(op[1])
                elif op[0] == "q":
                    got = front.connected(op[1], op[2])
                    want = oracle.connected(op[1], op[2])
                    if got != want:
                        rungs = _recover_from_findings(front, [
                            checks.Finding("serve", "answer mismatch",
                                           "cheap")])
                        note_recovery("answer", i,
                                      f"connected({op[1]}, {op[2]}) = "
                                      f"{got}, oracle says {want}", rungs)
                        if front.connected(op[1], op[2]) != want:
                            wrong_answers += 1
                elif op[0] == "w":
                    got_w = front.msf_weight()
                    want_w = oracle.msf_weight()
                    if not checks._weights_agree(got_w, want_w):
                        rungs = _recover_from_findings(front, [
                            checks.Finding("serve", "weight mismatch",
                                           "cheap")])
                        note_recovery("answer", i,
                                      f"msf_weight {got_w!r} vs oracle "
                                      f"{want_w!r}", rungs)
                        if not checks._weights_agree(
                                front.msf_weight(), oracle.msf_weight()):
                            wrong_answers += 1
                else:  # recycle
                    _recycle(n, engine)
            except WALCorruptionError as exc:
                # structured durable-log failure (e.g. a lost tail caught
                # by the next append's contiguity check): rung 5.  The
                # engine apply succeeded -- only the durable append failed
                # -- so op ``i`` committed in the front; finish its
                # bookkeeping to keep the oracle and the eid prediction in
                # lockstep.
                recover.repair_wal(front)
                if op[0] == "ins":
                    oracle.insert(op[1], op[2], op[3], next_eid)
                    next_eid += 1
                elif op[0] == "del":
                    oracle.delete(op[1])
                note_recovery("exception", i, str(exc), ["wal-repair"])
            except CorruptionError as exc:
                # flush-internal detection; recover_batch already ran
                if getattr(exc, "rejected", None):
                    unexpected_rejections += len(exc.rejected)
                note_recovery("exception", i, str(exc), ["batch-bisect"])
            if front.stats["recoveries"] > recoveries_before \
                    and (not detections or detections[-1]["op"] != i):
                # silent in-flush recovery (no error escaped to us)
                note_recovery("exception", i, "in-flush batch recovery",
                              ["batch-bisect"])
            if check_every and (i + 1) % check_every == 0:
                level = ("structural"
                         if (i + 1) % (4 * check_every) == 0 else "cheap")
                findings = front.self_check(level)
                if level == "structural":
                    from ..core.sparsify import default_pool
                    findings = findings + checks.check_pool(
                        default_pool, "structural")
                if findings:
                    rungs = _recover_from_findings(front, findings)
                    note_recovery("check", i,
                                  "; ".join(str(f) for f in findings[:4]),
                                  rungs)
                    still = front.self_check(level)
                    if still:
                        raise QuarantineExhausted(
                            f"findings survive recovery: "
                            f"{[str(f) for f in still[:3]]}", attempts=1)
    finally:
        faults.disarm()

    # ---- final verification (disarmed) ---------------------------------
    front.flush()
    final_findings = front.self_check("full")
    if final_findings:
        rungs = _recover_from_findings(front, final_findings)
        note_recovery("check", len(ops),
                      "; ".join(str(f) for f in final_findings[:4]), rungs)
        final_findings = front.self_check("full")
    msf_match = front.msf_ids() == oracle.msf_ids()
    weight_match = checks._weights_agree(front.msf_weight(),
                                         oracle.msf_weight())

    # clean twin: identical op stream, never armed
    twin = BatchedMSF(n, engine=engine, sparsify=sparsify,
                      batch_size=batch_size, pool_size=1, backend=backend)
    for op in ops:
        if op[0] == "ins":
            twin.insert_edge(op[1], op[2], op[3])
        elif op[0] == "del":
            twin.delete_edge(op[1])
        elif op[0] == "q":
            twin.connected(op[1], op[2])
        elif op[0] == "w":
            twin.msf_weight()
    twin.flush()
    twin_match = (checks.state_fingerprint(front)
                  == checks.state_fingerprint(twin))

    # durable tail: a restore from the on-disk artifacts must reproduce
    # the twin bit-for-bit (the crash-recovery contract, checked even
    # when no crash happened)
    durable_report = None
    restore_match = True
    if durability == "wal":
        from ..persist import restore
        front.close()
        try:
            restored, r_report = restore(durable_dir, level="cheap")
            try:
                restore_match = (checks.state_fingerprint(restored)
                                 == checks.state_fingerprint(twin))
            finally:
                restored.close()
            durable_report = {
                "wal": r_report["wal"],
                "snapshot": r_report["snapshot"],
                "snapshots_skipped": r_report["snapshots_skipped"],
                "replayed_batches": r_report["replayed_batches"],
                "findings": r_report["findings"],
                "restore_fingerprint_match": restore_match,
            }
            restore_match = restore_match and not r_report["findings"]
        finally:
            if temp_dir is not None:
                shutil.rmtree(temp_dir, ignore_errors=True)

    injected = plan.injected()
    n_detected = len(detections)
    masked = max(0, len(injected) - n_detected)
    ok = (not final_findings and msf_match and weight_match and twin_match
          and restore_match
          and wrong_answers == 0 and unexpected_rejections == 0)
    return {
        "seed": seed,
        "config": {"engine": engine, "sparsify": sparsify, "n": n,
                   "n_ops": n_ops, "batch_size": batch_size,
                   "check_every": check_every, "sites": sites,
                   "workload": workload, "backend": backend,
                   **({"shards": shards, "cross_fraction": cross_fraction}
                      if workload == "worker_mix" else {})},
        "faults": plan.report(),
        "sites_hit": sorted({e["site"] for e in injected}),
        "detections": detections,
        "n_injected": len(injected),
        "n_detected": n_detected,
        "n_recoveries": front.stats["recoveries"] + len(detections),
        "n_masked": masked,
        "recovery_work": {
            "events": recovery_costs,
            "mean": (sum(recovery_costs) / len(recovery_costs)
                     if recovery_costs else 0.0),
        },
        "wrong_answers": wrong_answers,
        "unexpected_rejections": unexpected_rejections,
        "final": {
            "self_check_full_clean": not final_findings,
            "findings": [str(f) for f in final_findings],
            "msf_match": msf_match,
            "weight_match": weight_match,
            "twin_fingerprint_match": twin_match,
            **({"durable": durable_report}
               if durable_report is not None else {}),
        },
        "ok": ok,
    }


# --------------------------------------------------------- crash campaign

def _crash_round_schedule(seed: int, n_ops: int, kills: int) -> list[dict]:
    """The deterministic round plan: source-index SIGKILLs in the first
    two-thirds of the stream, then the three commit-boundary rounds
    (killed *before* an append, *after* one, and after a *torn* one),
    then a final round that runs to completion."""
    rng = random.Random(seed ^ 0xC0FFEE)
    lo = max(1, n_ops // 6)
    hi = max(lo + kills + 1, (2 * n_ops) // 3)
    kill_ops = sorted(rng.sample(range(lo, hi), kills))
    rounds: list[dict] = [{"kill_op": k} for k in kill_ops]
    rounds += [
        {"kill_append": 2, "kill_append_mode": "before"},
        {"kill_append": 2, "kill_append_mode": "after"},
        {"kill_append": 1, "kill_append_mode": "after", "tear_last": True},
    ]
    rounds.append({})        # final round: runs to completion
    return rounds


def _read_round_file(directory: str, name: str):
    path = os.path.join(directory, name)
    if not os.path.exists(path):
        return None
    with open(path, encoding="utf-8") as fh:
        return json.load(fh)


def run_crash_campaign(seed: int, *, engine: str = "sequential",
                       sparsify: bool = True, backend: str = "scalar",
                       n: int = 40, n_ops: int = 240, batch_size: int = 12,
                       snapshot_every: int = 4, kills: int = 3,
                       burst: int = 24, churn: int = 16,
                       keep_dir: Optional[str] = None,
                       child_timeout: float = 600.0) -> dict:
    """SIGKILL-restart soak: the end-to-end crash-recovery contract.

    A subprocess (:mod:`repro.resilience.crash_child`) drives the
    ``restart_heavy`` stream against a durable front and is SIGKILLed at
    scheduled points -- at source-op indices, immediately *before* a WAL
    append (batch applied in-engine, never logged), immediately *after*
    one (the clean commit boundary), and after a *torn* append (the
    fault-injected partial record a real crash leaves).  Each restart
    restores from the durability directory and resumes the stream at the
    logged cursor, asserting the eid-prediction contract op by op.  The
    final round runs to completion; the parent then restores in-process,
    re-applies the post-cursor tail, and gates on a Kruskal-oracle match
    plus a bit-identical ``state_fingerprint`` against a never-crashed
    twin.  Zero tolerance: every divergence is a campaign failure.
    """
    import repro
    directory = keep_dir or tempfile.mkdtemp(prefix="repro-crash-")
    src_root = os.path.dirname(os.path.dirname(os.path.abspath(
        repro.__file__)))
    env = dict(os.environ)
    env["PYTHONPATH"] = src_root + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else "")
    ops = restart_heavy_ops(seed, n, n_ops, burst=burst, churn=churn,
                            recycle_every=0)
    base_cfg = {"dir": directory, "seed": seed, "n": n, "n_ops": n_ops,
                "engine": engine, "sparsify": sparsify, "backend": backend,
                "batch_size": batch_size, "snapshot_every": snapshot_every,
                "burst": burst, "churn": churn}
    rounds_out: list[dict] = []
    sigkill = -int(signal.SIGKILL)
    try:
        for r, round_cfg in enumerate(_crash_round_schedule(seed, n_ops,
                                                            kills)):
            cfg = {**base_cfg, **round_cfg, "round": r}
            proc = subprocess.run(
                [sys.executable, "-m", "repro.resilience.crash_child",
                 json.dumps(cfg)],
                env=env, capture_output=True, text=True,
                timeout=child_timeout)
            expected_kill = bool(round_cfg)
            completion = _read_round_file(directory, f"round-{r}.json")
            entry = {
                "round": r,
                "config": round_cfg,
                "returncode": proc.returncode,
                "killed": proc.returncode == sigkill,
                "restore": _read_round_file(directory,
                                            f"round-{r}-restore.json"),
                "completion": completion,
            }
            # a kill round may legitimately run out of stream before its
            # kill point fires; that is reported, not an error -- but an
            # exit that is neither SIGKILL nor clean completion is
            entry["ok"] = (proc.returncode == sigkill
                           or (proc.returncode == 0
                               and completion is not None
                               and (not expected_kill
                                    or completion.get("completed"))))
            if not entry["ok"]:
                entry["stderr"] = proc.stderr[-2000:]
            rounds_out.append(entry)

        # ---- never-crashed twin + oracle -------------------------------
        twin = BatchedMSF(n, engine=engine, sparsify=sparsify,
                          batch_size=batch_size, pool_size=1,
                          backend=backend, consistency="deferred")
        oracle = KruskalOracle()
        next_eid = 1
        for op in ops:
            if op[0] == "ins":
                eid = twin.insert_edge(op[1], op[2], op[3])
                assert eid == next_eid
                oracle.insert(op[1], op[2], op[3], eid)
                next_eid += 1
            elif op[0] == "del":
                twin.delete_edge(op[1])
                oracle.delete(op[1])
        twin.flush()
        oracle_match = (twin.msf_ids() == oracle.msf_ids()
                        and checks._weights_agree(twin.msf_weight(),
                                                  oracle.msf_weight()))
        twin_fp = checks.state_fingerprint(twin)

        # ---- in-process restore + post-cursor tail re-apply ------------
        from ..persist import restore, resume_point
        restored, r_report = restore(directory, level="full",
                                     snapshot_every=snapshot_every)
        try:
            sink = restored.durability
            for i in range(resume_point(r_report), len(ops)):
                sink.cursor = i
                op = ops[i]
                if op[0] == "ins":
                    restored.insert_edge(op[1], op[2], op[3])
                elif op[0] == "del":
                    restored.delete_edge(op[1])
            restored.flush()
            restore_match = checks.state_fingerprint(restored) == twin_fp
        finally:
            restored.close()

        from ..persist.snapshot import fingerprint_digest
        twin_digest = fingerprint_digest(twin_fp)
        final_completion = rounds_out[-1]["completion"] or {}
        child_digest_match = final_completion.get("digest") == twin_digest
        rounds_ok = all(e["ok"] for e in rounds_out)
        kills_fired = sum(1 for e in rounds_out if e["killed"])
        ok = (rounds_ok and oracle_match and restore_match
              and child_digest_match and not r_report["findings"])
        return {
            "seed": seed,
            "config": {**base_cfg,
                       "dir": (directory if keep_dir else "<temp>")},
            "rounds": rounds_out,
            "kills_fired": kills_fired,
            "final": {
                "oracle_match": oracle_match,
                "restore_fingerprint_match": restore_match,
                "child_digest_match": child_digest_match,
                "twin_digest": twin_digest,
                "restore_findings": r_report["findings"],
                "wal": r_report["wal"],
                "snapshot": r_report["snapshot"],
                "replayed_batches": r_report["replayed_batches"],
            },
            "ok": ok,
        }
    finally:
        if keep_dir is None:
            shutil.rmtree(directory, ignore_errors=True)
