"""Quarantine-and-rebuild recovery -- the *repair* half of the layer.

The library's structures are all rebuildable from small authoritative
registries (an edge multiset), and the MSF under the strict
``(weight, eid)`` order is *unique* -- so recovery never has to trust a
corrupted structure: it quarantines it, rebuilds from the registry, and
differentially verifies the result.  The ladder, in escalation order:

1. **cache eviction + audit degrade** (:func:`recover_machine`) -- a
   machine whose replay tier is suspect drops every compiled
   :class:`~repro.pram.machine.TracePlan` and verified fingerprint
   (forcing clean re-records) and optionally steps its audit level down
   one rung (``fast`` -> ``count`` -> ``strict``), paying more
   per-launch verification instead of trusting caches.
2. **arena sweep** (:func:`recover_pool`) -- free-listed engines that
   fail the reset-completeness audit are quarantined; quarantined
   engines are held by strong reference and ``release`` refuses them,
   so they can never re-enter the free-list.
3. **backend rebuild** (:func:`rebuild_backend`) -- a serving front's
   poisoned engine is quarantined wholesale (every pooled node engine
   included) and rebuilt from the front's authoritative edge registry,
   then verified; bounded retries, then :class:`QuarantineExhausted`.
4. **batch bisection** (:func:`recover_batch`) -- a batch that failed
   mid-apply is re-run on a rebuilt backend with binary splitting; ops
   that fail in a singleton segment are *rejected* (reported to the
   caller) while every healthy op commits.
5. **durable-artifact rebuild** (:func:`repair_wal`) -- a damaged
   write-ahead log or snapshot set is replaced wholesale: a fresh
   snapshot of the live front's authoritative registry anchors the
   directory at the current epoch, the suspect log is pruned through
   it, and invalid snapshot files are removed -- the same
   never-trust-the-corrupted-copy discipline, applied on disk.

Recovery work is charged through the normal counters -- a rebuilt
engine re-pays its construction and insertion costs on its own machine
and op counter, so post-recovery measurements stay honest (DESIGN.md,
"Resilience").
"""

from __future__ import annotations

from collections import deque

from . import checks
from .errors import QuarantineExhausted

__all__ = ["recover_machine", "recover_pool", "rebuild_backend",
           "recover_batch", "repair_wal"]

#: audit degrade ladder: each level maps to the next-more-verified one
_DEGRADE = {"fast": "count", "count": "strict", "strict": "strict"}


# ------------------------------------------------------------- machines

def recover_machine(machine, *, degrade: bool = True) -> dict:
    """Evict a machine's replay/shape caches; optionally degrade audit.

    Returns a report of what was dropped and the audit transition.  After
    this, every kernel shape re-records from a fully checked launch on
    next sighting -- the caches rebuild themselves clean.
    """
    dropped = machine.purge_replay_caches()
    before = machine.audit
    after = before
    if degrade:
        after = _DEGRADE[before]
        if after != before:
            machine.set_audit(after)
    return {"dropped": dropped, "audit": {"before": before, "after": after}}


# ---------------------------------------------------------------- arena

def recover_pool(pool) -> dict:
    """Sweep an engine arena, quarantining non-pristine free engines.

    Uses the same reset-completeness predicate as the ``"structural"``
    pool check; every offender is removed from the free-list *and*
    registered as quarantined (``release`` will refuse it forever).
    """
    offenders = []
    for key, engine in list(pool.free_engines()):
        problems = checks._reset_problems(engine)
        if problems:
            pool.quarantine(engine)
            offenders.append({"key": repr(key), "problems": problems})
    return {"quarantined": len(offenders), "offenders": offenders}


# -------------------------------------------------------------- backends

def _quarantine_impl(impl) -> None:
    """Retire a suspect backend without recycling anything it owns."""
    fn = getattr(impl, "quarantine", None)
    if fn is not None:
        fn()  # SparsifiedMSF: every node engine -> pool quarantine
    # DegreeReducer backends own nothing pooled; dropping the reference
    # suffices (nothing must be returned to any arena)


def _build_from_registry(front, edges: dict, committed) -> object:
    """A fresh backend holding ``edges`` plus the ``committed`` op replay.

    ``edges`` is the authoritative pre-batch registry (eid -> (u, v, w),
    self-loops included); insertion order is ascending eid, which by MSF
    uniqueness reproduces the same forest regardless of the original
    arrival order.
    """
    impl = front._make_impl()
    for eid in sorted(edges):
        u, v, w = edges[eid]
        impl.insert_edge(u, v, w, eid=eid)
    for op in committed:
        if op[0] == "del":
            impl.delete_edge(op[1])
        else:
            _t, eid, u, v, w = op
            impl.insert_edge(u, v, w, eid=eid)
    return impl


def rebuild_backend(front, *, max_attempts: int = 3,
                    level: str = "cheap") -> dict:
    """Quarantine a serving front's backend and rebuild it from registry.

    Verifies each rebuild with :func:`repro.resilience.checks.check_engine`
    at ``level`` plus the edge-count cross-check; a rebuild that still
    shows findings is itself quarantined and retried (a fresh build pulls
    different -- or no -- pooled engines each time, since quarantine
    evicts the ones it used).  Raises :class:`QuarantineExhausted` after
    ``max_attempts`` dirty rebuilds.
    """
    attempts = 0
    last_findings: list = []
    while attempts < max_attempts:
        attempts += 1
        _quarantine_impl(front._impl)
        front._impl = _build_from_registry(front, front._edges, ())
        front._snapshot = None
        last_findings = checks.check_engine(front._impl, level)
        if front._impl.edge_count() != len(front._edges):
            last_findings = list(last_findings) + [checks.Finding(
                "serve", f"rebuilt backend holds "
                f"{front._impl.edge_count()} edges, registry "
                f"{len(front._edges)}", level)]
        if not last_findings:
            return {"attempts": attempts}
    raise QuarantineExhausted(
        f"backend rebuild still dirty after {attempts} attempts: "
        f"{[str(f) for f in last_findings[:3]]}", attempts=attempts)


# ------------------------------------------------------------- durability

def repair_wal(front) -> dict:
    """Rebuild a front's durable artifacts from the authoritative state.

    The quarantine-and-rebuild discipline applied to the *durable* side:
    a log with torn records, a lost tail, or damaged snapshot files
    cannot be trusted for replay, but the in-memory front still holds
    the authoritative registry -- so recovery writes a fresh snapshot of
    it at the current epoch, prunes the (suspect) log through that seq,
    and removes every snapshot file that fails validation.  After this
    the durable state verifies clean and a restore from it reproduces
    the live front exactly; appends resume at ``epoch + 1``.

    Raises :class:`QuarantineExhausted` if the rebuilt artifacts still
    fail verification (damage that survives a rewrite is not a crash
    artifact).
    """
    import os

    from ..persist.snapshot import list_snapshots, load_snapshot
    from .errors import WALCorruptionError

    sink = front._durable
    problems_before = sink.log.verify()
    # the suspect log takes no appends during the repair: pending ops
    # drain through the normal apply path (reads inside the fingerprint
    # would otherwise trigger a flush that re-hits the damaged log), and
    # the fresh snapshot then covers everything the prune discards
    sink.suspended = True
    try:
        front.flush()
        # bounded retry: under continued injection the rebuild itself can
        # be hit (a torn fresh snapshot); a re-write from the same
        # authoritative registry heals it unless the damage is persistent
        attempts = 0
        while True:
            attempts += 1
            snap_path = front._write_durable_snapshot()
            try:
                load_snapshot(snap_path)
                break
            except WALCorruptionError as exc:
                if attempts >= 3:
                    raise QuarantineExhausted(
                        f"fresh snapshot still invalid after {attempts} "
                        f"writes: {exc}", attempts=attempts) from exc
        pruned = sink.log.prune_through(front._epoch)
    finally:
        sink.suspended = False
    removed: list[str] = []
    for path in list_snapshots(sink.directory):
        if path == snap_path:
            continue
        try:
            load_snapshot(path)
        except WALCorruptionError:
            os.remove(path)
            removed.append(path)
    still = sink.log.verify()
    if still:
        raise QuarantineExhausted(
            f"durable log still dirty after rebuild: {still[:3]}",
            attempts=attempts)
    return {"problems": problems_before, "snapshot": snap_path,
            "pruned_records": pruned, "removed_snapshots": removed,
            "attempts": attempts}


# ----------------------------------------------------------------- batch

def recover_batch(front, batch, exc: BaseException, *,
                  max_attempts: int = 3) -> list[tuple]:
    """Recover a serving front from a failed batch application.

    The backend is presumed poisoned (the batch died mid-apply or failed
    the post-apply audit): it is quarantined and rebuilt from the
    authoritative pre-batch registry, then the *canonical* op stream
    (``batch.ops()`` -- not whatever corrupted stream was applied) is
    re-driven through it with binary splitting.  A segment that fails is
    split and retried; a **singleton** that fails is rejected and
    reported.  After any dirty segment the backend is rebuilt from
    pre-state + committed ops before continuing, so partial effects of a
    poisoned op never survive.

    Returns the rejected ``(op, exception)`` pairs; raises
    :class:`QuarantineExhausted` when the final state fails verification
    even after ``max_attempts`` clean rebuilds.  The bounded retry matters
    under *continued* fault injection: a fault that lands inside the
    recovery itself (corrupting the freshly rebuilt backend) is caught by
    the post-recovery verification, and the next rebuild -- re-driven from
    the same authoritative registry -- heals it unless the corruption is
    persistent.
    """
    pre_edges = dict(front._edges)
    committed: list[tuple] = []
    rejected: list[tuple] = []
    dirty = True          # the original backend is poisoned: rebuild first
    segments: deque[list[tuple]] = deque([list(batch.ops())])
    while segments:
        seg = segments.popleft()
        if dirty:
            _quarantine_impl(front._impl)
            front._impl = _build_from_registry(front, pre_edges, committed)
            dirty = False
        try:
            front._apply_ops(seg)
        except Exception as seg_exc:  # noqa: BLE001 - poisoned op may
            # raise anything; recovery classifies instead of crashing
            dirty = True
            if len(seg) == 1:
                rejected.append((seg[0], seg_exc))
            else:
                mid = len(seg) // 2
                segments.appendleft(seg[mid:])
                segments.appendleft(seg[:mid])
            continue
        committed.extend(seg)
    attempts = 0
    while True:
        attempts += 1
        if dirty:
            _quarantine_impl(front._impl)
            front._impl = _build_from_registry(front, pre_edges, committed)
            dirty = False
        front._snapshot = None
        problems = _recovery_problems(front, pre_edges, committed)
        if not problems:
            return rejected
        if attempts >= max_attempts:
            raise QuarantineExhausted(
                f"post-recovery verification failed: {problems}",
                attempts=attempts)
        dirty = True  # rebuild once more (fault may have hit the recovery)


def _recovery_problems(front, pre_edges: dict, committed) -> str:
    expected = len(pre_edges)
    for op in committed:
        expected += -1 if op[0] == "del" else 1
    got = front._impl.edge_count()
    findings = checks.check_engine(front._impl, "cheap")
    if got != expected or findings:
        return (f"engine holds {got} edges (expected {expected}); "
                f"findings={[str(f) for f in findings[:3]]}")
    return ""
