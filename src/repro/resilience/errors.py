"""Structured error hierarchy for the resilience layer.

All errors raised by the resilience subsystem (and by the serving layer's
per-op rejection path) derive from :class:`ReproError`, so callers can
catch one base class and still discriminate:

``ReproError``
    root of the hierarchy.
``CorruptionError``
    a structural self-audit (or a differential check) found state that
    violates a deterministic invariant.  Carries the machine-readable
    :attr:`findings` list produced by :mod:`repro.resilience.checks`.
``UnknownEdgeError``
    an operation referenced an edge id that is not live.  Subclasses
    ``KeyError`` as well, so pre-existing ``except KeyError`` /
    ``pytest.raises(KeyError)`` call sites keep working unchanged.
``QuarantineExhausted``
    the recovery ladder ran out of options (e.g. a rebuilt engine failed
    its differential verification again, or the bisection could not
    isolate a poisoned op).
``BackendUnavailable``
    an optional execution backend was requested without its dependency
    (``backend="columnar"`` needs the ``repro[columnar]`` extra;
    ``backend="compiled"`` needs the native extension built).
    Subclasses ``ImportError`` so generic dependency-guard call sites
    keep working unchanged.
``WALCorruptionError``
    a durable-log or snapshot record failed validation (checksum
    mismatch, broken hash chain, sequence gap, truncated file).  Carries
    the offending record's :attr:`seq` and the artifact's :attr:`path` --
    recovery must never silently replay past one of these.
``SnapshotStaleError``
    a snapshot exists but cannot anchor recovery (the retained log tail
    starts after the snapshot's seq, or the recorded configuration does
    not match the requested one).  Also carries :attr:`seq`/:attr:`path`.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "CorruptionError",
    "UnknownEdgeError",
    "QuarantineExhausted",
    "BackendUnavailable",
    "WALCorruptionError",
    "SnapshotStaleError",
]


class ReproError(Exception):
    """Base class for structured errors raised by the repro library."""


class CorruptionError(ReproError):
    """A deterministic invariant was found violated.

    Parameters
    ----------
    message:
        human-readable summary.
    findings:
        optional list of :class:`repro.resilience.checks.Finding`
        (or plain strings) describing each violated invariant.
    site:
        optional injection-site name when the corruption is attributable
        to a specific component (``"pram.cell"``, ``"tt.agg"``, ...).
    """

    def __init__(self, message: str, *, findings=None, site=None):
        super().__init__(message)
        self.findings = list(findings) if findings else []
        self.site = site


class UnknownEdgeError(ReproError, KeyError):
    """An operation referenced an unknown or already-deleted edge id.

    Inherits from ``KeyError`` for backwards compatibility with callers
    that predate the structured hierarchy.
    """

    def __init__(self, eid, message=None):
        msg = message or f"unknown or already-deleted edge id {eid}"
        # KeyError renders its first arg with repr(); pass the message
        # once so str(exc) stays readable.
        super().__init__(msg)
        self.eid = eid

    def __str__(self):  # KeyError would quote the message
        return self.args[0] if self.args else ""


class QuarantineExhausted(ReproError):
    """Recovery could not restore a verified-clean state."""

    def __init__(self, message: str, *, attempts: int = 0):
        super().__init__(message)
        self.attempts = attempts


class BackendUnavailable(ReproError, ImportError):
    """An optional execution backend's dependency is not installed."""

    def __init__(self, backend: str, requirement: str, extra: str):
        super().__init__(
            f"backend {backend!r} requires {requirement}; install it via "
            f"`pip install repro[{extra}]` or pick backend='scalar'")
        self.backend = backend
        self.requirement = requirement
        self.extra = extra


class WALCorruptionError(ReproError):
    """A durable-log or snapshot record failed its integrity validation.

    Parameters
    ----------
    message:
        human-readable summary of what failed to validate.
    seq:
        batch sequence number of the offending record, when attributable
        (``None`` for file-level damage with no parseable seq).
    path:
        filesystem path of the damaged artifact (the WAL database or the
        snapshot file).
    """

    def __init__(self, message: str, *, seq=None, path=None):
        super().__init__(message)
        self.seq = seq
        self.path = str(path) if path is not None else None


class SnapshotStaleError(ReproError):
    """A snapshot cannot anchor recovery against the retained log.

    Raised when the durable log's retained tail starts *after* the
    snapshot's seq (the gap makes replay impossible) or when the
    snapshot's recorded configuration disagrees with the requested one.
    Carries the same ``seq``/``path`` attributes as
    :class:`WALCorruptionError`.
    """

    def __init__(self, message: str, *, seq=None, path=None):
        super().__init__(message)
        self.seq = seq
        self.path = str(path) if path is not None else None
