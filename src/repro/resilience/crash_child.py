"""Subprocess body for the crash-restart soak campaign.

Run as ``python -m repro.resilience.crash_child '<json config>'`` by
:func:`repro.resilience.soak.run_crash_campaign`.  The child rebuilds
the campaign's deterministic ``restart_heavy`` op stream, restores from
the durability directory when a WAL already exists (writing a
``round-<r>-restore.json`` audit record *before* doing anything else,
so even a round that is later killed documents its recovery), resumes
the stream at the logged cursor with the eid-prediction contract
asserted op by op, and -- per the round's config -- SIGKILLs itself at
a source-op index or at a WAL-append boundary (optionally tearing the
final record first, via the ``wal.append`` fault site, to leave the
partial-write artifact a real crash leaves).  A round that survives to
the end of the stream flushes, records its ``state_fingerprint``
digest in ``round-<r>.json``, and exits 0.

Exit statuses the parent accepts: death by SIGKILL (the scheduled
crash) or 0 with a completion record.  Anything else -- including an
eid-prediction failure, which would mean the restored counter state
diverged -- is a campaign failure.
"""

from __future__ import annotations

import json
import os
import signal
import sys


def _apply(front, op) -> None:
    if op[0] == "q":
        front.connected(op[1], op[2])
    elif op[0] == "w":
        front.msf_weight()
    elif op[0] == "del":
        front.delete_edge(op[1])


def main(argv=None) -> int:
    args = sys.argv[1:] if argv is None else argv
    cfg = json.loads(args[0])
    directory = cfg["dir"]

    from ..persist import restore, resume_point
    from ..persist.snapshot import fingerprint_digest
    from ..persist.wal import WAL_FILENAME
    from ..serve.batched import BatchedMSF
    from . import faults
    from .checks import state_fingerprint
    from .soak import restart_heavy_ops

    if "ops" in cfg:            # explicit trace (the kill-matrix tests)
        ops = [tuple(op) for op in cfg["ops"]]
    else:
        ops = restart_heavy_ops(cfg["seed"], cfg["n"], cfg["n_ops"],
                                burst=cfg.get("burst", 24),
                                churn=cfg.get("churn", 16),
                                recycle_every=0)
    eid_of: dict[int, int] = {}
    next_eid = 1
    for i, op in enumerate(ops):
        if op[0] == "ins":
            eid_of[i] = next_eid
            next_eid += 1

    restore_record = os.path.join(directory,
                                  f"round-{cfg['round']}-restore.json")
    if os.path.exists(os.path.join(directory, WAL_FILENAME)):
        # cadence is operational (not stored config): without the
        # override a restored front would revert to the default
        front, report = restore(directory,
                                snapshot_every=cfg["snapshot_every"])
        start = resume_point(report)
        with open(restore_record, "w", encoding="utf-8") as fh:
            json.dump({"resumed": True, "cursor": report["cursor"],
                       "start": start, "wal": report["wal"],
                       "snapshot": report["snapshot"],
                       "snapshots_skipped": report["snapshots_skipped"],
                       "replayed_batches": report["replayed_batches"],
                       "findings": report["findings"]}, fh)
        if report["findings"]:
            raise SystemExit(f"restore found: {report['findings']}")
    else:
        front = BatchedMSF(
            cfg["n"], engine=cfg["engine"], sparsify=cfg["sparsify"],
            batch_size=cfg["batch_size"], pool_size=1,
            backend=cfg["backend"], consistency="deferred",
            durability="wal", durable_dir=directory,
            snapshot_every=cfg["snapshot_every"])
        start = 0
        with open(restore_record, "w", encoding="utf-8") as fh:
            json.dump({"resumed": False, "start": 0}, fh)

    sink = front.durability
    if cfg.get("kill_append"):
        if cfg.get("kill_append_mode") == "before":
            sink.kill_at_append = cfg["kill_append"]
        else:
            sink.kill_after_append = cfg["kill_append"]
        if cfg.get("tear_last"):
            # tear the record the kill lands on: the crash artifact is a
            # checksum-invalid FINAL record the next restore must drop
            faults.arm(faults.FaultPlan([faults.Fault(
                "wal.append", nth=cfg["kill_append"] - 1,
                param=cfg["seed"] or 1)]))

    kill_op = cfg.get("kill_op")
    for i in range(start, len(ops)):
        if kill_op is not None and i == kill_op:
            os.kill(os.getpid(), signal.SIGKILL)
        sink.cursor = i
        op = ops[i]
        if op[0] == "ins":
            eid = front.insert_edge(op[1], op[2], op[3])
            if eid != eid_of[i]:
                raise SystemExit(
                    f"eid drift at op {i}: front assigned {eid}, "
                    f"stream predicted {eid_of[i]}")
        else:
            _apply(front, op)
    front.flush()
    faults.disarm()

    out = {"completed": True, "start": start,
           "digest": fingerprint_digest(state_fingerprint(front)),
           "epoch": front.epoch, "next_eid": front._next_eid,
           "msf_weight": front.msf_weight()}
    with open(os.path.join(directory, f"round-{cfg['round']}.json"),
              "w", encoding="utf-8") as fh:
        json.dump(out, fh)
    front.close()
    return 0


if __name__ == "__main__":
    sys.exit(main())
