"""Resilience layer: fault injection, structural self-audits, recovery.

Three cooperating pieces (see README "Resilience"):

* :mod:`repro.resilience.faults` -- a seeded, deterministic fault-injection
  registry threaded through the PRAM machine, the replay caches, the
  2-3-tree substrate, the engine arena, the sparsification tree and the
  serving layer.  Zero cost while disarmed.
* :mod:`repro.resilience.checks` -- tiered invariant checkers
  (``cheap`` / ``structural`` / ``full``) surfaced as ``self_check()`` on
  :class:`repro.DynamicMSF` / :class:`repro.SparsifiedMSF` /
  :class:`repro.BatchedMSF`.
* :mod:`repro.resilience.recover` -- the quarantine-and-rebuild ladder:
  evict-and-re-record for poisoned replay caches, audit-degrade for
  machines, quarantine (never back to the free-list) plus
  rebuild-from-edge-multiset for structurally corrupted engines, and
  batch bisection for the serving layer.
* :mod:`repro.resilience.soak` -- the seeded soak campaign driving all of
  the above against the Kruskal oracle (``benchmarks/bench_soak.py``).

Only :mod:`errors` and :mod:`faults` are imported eagerly -- they are
dependency-free, so low-level modules (``pram.machine``,
``structures.two_three_tree``) can import this package without cycles.
The heavier submodules load lazily on attribute access.
"""

from __future__ import annotations

from . import faults
from .errors import (CorruptionError, QuarantineExhausted, ReproError,
                     UnknownEdgeError)

__all__ = [
    "faults",
    "checks",
    "recover",
    "soak",
    "ReproError",
    "CorruptionError",
    "UnknownEdgeError",
    "QuarantineExhausted",
]

_LAZY = ("checks", "recover", "soak")


def __getattr__(name: str):
    if name in _LAZY:
        import importlib
        mod = importlib.import_module(f".{name}", __name__)
        globals()[name] = mod
        return mod
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
