"""Tiered invariant checkers -- the *detection* half of the resilience layer.

Every public entry point returns a list of :class:`Finding` records
(empty = clean) instead of raising, so callers can decide between
"log and recover" and "fail loudly".  Three tiers:

``"cheap"``
    O(|MSF| + registries) consistency: the incremental-vs-recomputed
    weight pair, registry cross-counts, serve-layer live-set agreement.
    Safe to run after every batch.
``"structural"``
    every per-structure invariant: chunk DLL contiguity, Euler-tour
    validity, 2-3-tree shape *and* aggregate recomputation, LSDS
    aggregates, replay-plan fingerprint revalidation, interned-memory
    table consistency, engine-arena reset completeness.
``"full"``
    everything, plus the brute-force matrix-``C`` recomputation and the
    Kruskal forest-equality oracle (the strongest, slowest verdict).

The checkers never mutate the structures they inspect, and they never
raise on a *corrupted* structure -- unexpected exceptions inside a check
are themselves converted into findings (a poisoned structure must not be
able to crash its own auditor).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Optional

__all__ = [
    "Finding", "check_engine", "check_tree", "check_reducer",
    "check_machine", "check_pool", "check_batched", "check_cluster",
    "check_core", "check_durability", "state_fingerprint",
]

_LEVELS = ("cheap", "structural", "full")
_MASK21 = (1 << 21) - 1


@dataclass(frozen=True)
class Finding:
    """One detected invariant violation."""

    component: str   # "machine" | "reducer" | "tree" | "pool" | "serve"
    message: str
    level: str       # the tier that caught it

    def __str__(self) -> str:  # pragma: no cover - diagnostics only
        return f"[{self.level}/{self.component}] {self.message}"


def _rank(level: str) -> int:
    if level not in _LEVELS:
        raise ValueError(
            f"level must be one of {_LEVELS}, got {level!r}")
    return _LEVELS.index(level)


def _guard(out: list, component: str, level: str, fn) -> None:
    """Run one check body; unexpected exceptions become findings."""
    try:
        fn()
    except Exception as exc:  # noqa: BLE001 - corrupted structures may
        # raise anything; the auditor reports instead of crashing
        out.append(Finding(component, f"checker crashed: {exc!r}", level))


# --------------------------------------------------------------- machine


def check_machine(machine, level: str = "structural") -> list[Finding]:
    """Replay-tier cache revalidation for one PRAM :class:`Machine`.

    Structural tier and up: every compiled :class:`TracePlan` must be
    internally consistent with its own recorded fingerprint (depth =
    number of steps, work = sum of per-step reads+writes, processors =
    max per-step live count, and no step issues more ops than it has
    live processors), every verified shape-signature fingerprint must
    satisfy the same per-step arithmetic, and the interned-address table
    must round-trip (:meth:`Mem.check_interning`).
    """
    rank = _rank(level)
    out: list[Finding] = []
    if rank < 1:
        return out

    def plans() -> None:
        for key, plan in machine._shaped.data.items():
            if type(plan) is not _trace_plan_type(machine):
                continue  # legacy (depth, work, procs) tuples: nothing to do
            fp = plan.fingerprint
            if not fp:
                continue  # plans may legitimately carry no fingerprint
            bad = _fingerprint_problem(fp)
            if bad is not None:
                out.append(Finding(
                    "machine", f"plan {key!r}: {bad}", level))
                continue
            depth = len(fp)
            work = sum(((p >> 21) & _MASK21) + (p & _MASK21) for p in fp)
            procs = max(p >> 42 for p in fp)
            if plan.depth != depth or plan.work != work \
                    or plan.processors != procs:
                out.append(Finding(
                    "machine",
                    f"plan {key!r}: recorded stats (depth={plan.depth}, "
                    f"work={plan.work}, procs={plan.processors}) disagree "
                    f"with its own fingerprint (depth={depth}, work={work}, "
                    f"procs={procs})", level))
            if plan.n_effects is not None and plan.n_effects < 0:
                out.append(Finding(
                    "machine", f"plan {key!r}: negative effect count "
                    f"{plan.n_effects}", level))

    def signatures() -> None:
        for key, fps in machine._verified.data.items():
            for fp in fps:
                bad = _fingerprint_problem(fp)
                if bad is not None:
                    out.append(Finding(
                        "machine", f"signature {key!r}: {bad}", level))

    def interning() -> None:
        for problem in machine.mem.check_interning():
            out.append(Finding("machine", f"interning: {problem}", level))

    _guard(out, "machine", level, plans)
    _guard(out, "machine", level, signatures)
    _guard(out, "machine", level, interning)
    return out


def _trace_plan_type(machine):
    from ..pram.machine import TracePlan
    return TracePlan


def _fingerprint_problem(fp) -> Optional[str]:
    """Per-step arithmetic sanity of one packed fingerprint tuple."""
    for i, p in enumerate(fp):
        if not isinstance(p, int) or p < 0:
            return f"step {i}: non-integer packed entry {p!r}"
        nlive = p >> 42
        nr = (p >> 21) & _MASK21
        nw = p & _MASK21
        if nr + nw > nlive:
            return (f"step {i}: {nr} reads + {nw} writes exceed "
                    f"{nlive} live processors")
        if nlive == 0:
            return f"step {i}: zero live processors recorded"
    return None


# --------------------------------------------------------------- reducer


def check_reducer(red, level: str = "cheap") -> list[Finding]:
    """Checks for one :class:`~repro.core.degree.DegreeReducer`."""
    rank = _rank(level)
    out: list[Finding] = []
    core = red.core

    def weight_pair() -> None:
        inc = core.msf_weight()
        ref = core.msf_weight_recomputed()
        if not _weights_agree(inc, ref):
            out.append(Finding(
                "reducer",
                f"incremental core MSF weight {inc!r} != recomputed "
                f"{ref!r}", "cheap"))

    def registries() -> None:
        for eid, (u, v, _w, _e, hu, hv) in red.real.items():
            if red.chains[u].hosted.get(hu) != eid:
                out.append(Finding(
                    "reducer", f"edge {eid}: host slot {hu} of vertex {u} "
                    f"does not host it", "cheap"))
            if red.chains[v].hosted.get(hv) != eid:
                out.append(Finding(
                    "reducer", f"edge {eid}: host slot {hv} of vertex {v} "
                    f"does not host it", "cheap"))

    _guard(out, "reducer", "cheap", weight_pair)
    _guard(out, "reducer", "cheap", registries)
    if rank < 1:
        return out

    def accounting() -> None:
        n_core = red.n + 2 * red.max_edges
        in_chains = sum(len(c.nodes) for c in red.chains)
        if in_chains - red.n + len(red._pool) != 2 * red.max_edges:
            out.append(Finding(
                "reducer",
                f"gadget accounting broken: {in_chains} chain nodes + "
                f"{len(red._pool)} pooled != {n_core} total", level))
        hosted = sum(len(c.hosted) for c in red.chains)
        if hosted != 2 * len(red.real):
            out.append(Finding(
                "reducer", f"{hosted} hosted slots for {len(red.real)} "
                f"real edges", level))

    _guard(out, "reducer", level, accounting)
    if getattr(core, "fabric", None) is not None:
        out.extend(_audit_core(core, level))
    machine = getattr(core, "machine", None)
    if machine is not None:
        out.extend(check_machine(machine, level))
    return out


def _audit_core(core, level: str) -> list[Finding]:
    """Deep structural audit of one sparse engine, as findings."""
    from ..core.audit import audit
    out: list[Finding] = []
    full = _rank(level) >= 2
    try:
        audit(core, matrix=full, forest=full)
    except AssertionError as exc:
        out.append(Finding("reducer", f"structural audit: {exc}", level))
    except Exception as exc:  # noqa: BLE001 - corrupted structures
        out.append(Finding(
            "reducer", f"structural audit crashed: {exc!r}", level))
    # columnar backend: the complex128 mirror must agree entrywise with
    # the authoritative object matrix (catches a torn dual-write, e.g.
    # the seeded ``columnar.col`` fault)
    space = getattr(getattr(core, "fabric", None), "space", None)
    colm = getattr(space, "colm", None)
    if colm is not None:
        def mirror_agrees() -> None:
            for msg in colm.verify_against(space.C):
                out.append(Finding("columnar", msg, level))
        _guard(out, "columnar", level, mirror_agrees)
    # compiled backend: the flat float64 mirror must agree entrywise with
    # the authoritative object matrix (catches a torn dual-write, e.g.
    # the seeded ``compiled.kernel`` fault)
    compm = getattr(space, "compm", None)
    if compm is not None:
        def flat_mirror_agrees() -> None:
            for msg in compm.verify_against(space.C):
                out.append(Finding("compiled", msg, level))
        _guard(out, "compiled", level, flat_mirror_agrees)
    out.extend(_sparse_and_lct_findings(core, space, level))
    return out


def _sparse_and_lct_findings(core, space, level: str) -> list[Finding]:
    """Audits specific to the mirror-bearing backends' acceleration state.

    The live-lane sets (``ChunkSpace._live``) and the compiled link-cut
    forest's flat slabs are *derived* structures: if either drifts from
    the authoritative object state, sparse scans or path queries go
    silently wrong, so the structural tier rechecks both.
    """
    out: list[Finding] = []
    if getattr(space, "_live", None) is not None:
        def lanes_agree() -> None:
            for msg in space.verify_live_lanes():
                out.append(Finding("sparse", msg, level))
        _guard(out, "sparse", level, lanes_agree)
    lct = getattr(core, "lct", None)
    if lct is not None and hasattr(lct, "self_check"):
        def lct_clean() -> None:
            for msg in lct.self_check():
                out.append(Finding("lct", msg, level))
        _guard(out, "lct", level, lct_clean)
    return out


def _weights_agree(a: float, b: float) -> bool:
    if math.isinf(a) or math.isinf(b):
        return a == b
    if math.isnan(a) or math.isnan(b):
        return False
    return math.isclose(a, b, rel_tol=1e-9, abs_tol=1e-6)


# ------------------------------------------------------------------ pool


def check_pool(pool, level: str = "cheap") -> list[Finding]:
    """Checks for an :class:`~repro.core.sparsify.EnginePool` arena.

    Cheap: no quarantined engine sits in the free-list.  Structural and
    up: every free-listed engine is *pristine* -- reset really completed
    (empty registries, full gadget pool, singleton chains, zero weight,
    empty change log), which is the invariant ``acquire`` relies on.
    """
    rank = _rank(level)
    out: list[Finding] = []

    def no_quarantined() -> None:
        for key, engine in pool.free_engines():
            if pool.is_quarantined(engine):
                out.append(Finding(
                    "pool", f"quarantined engine in free-list under "
                    f"{key!r}", "cheap"))

    _guard(out, "pool", "cheap", no_quarantined)
    if rank < 1:
        return out

    def pristine() -> None:
        for key, engine in pool.free_engines():
            problems = _reset_problems(engine)
            for msg in problems:
                out.append(Finding(
                    "pool", f"free-listed engine under {key!r} not "
                    f"pristine: {msg}", level))

    _guard(out, "pool", level, pristine)
    return out


def _reset_problems(engine) -> list[str]:
    """Why ``engine`` is not bit-identical to a freshly built reducer."""
    msgs: list[str] = []
    if engine.real:
        msgs.append(f"{len(engine.real)} stale real edges")
    if engine.self_loops:
        msgs.append(f"{len(engine.self_loops)} stale self-loops")
    if engine._chain_edge:
        msgs.append(f"{len(engine._chain_edge)} stale chain edges")
    if len(engine._pool) != 2 * engine.max_edges:
        msgs.append(f"gadget pool holds {len(engine._pool)} ids, expected "
                    f"{2 * engine.max_edges}")
    for v, chain in enumerate(engine.chains):
        if len(chain.nodes) != 1 or chain.hosted or chain.nodes[0] != v:
            msgs.append(f"chain of vertex {v} not reset")
            break
    core = engine.core
    if getattr(core, "change_log", None):
        msgs.append(f"core change log holds {len(core.change_log)} entries")
    if getattr(core, "edges", None):
        msgs.append(f"core still registers {len(core.edges)} edges")
    w = core.msf_weight()
    if w != 0.0:
        msgs.append(f"core incremental weight {w!r} != 0.0")
    return msgs


# ------------------------------------------------------------------ tree


def check_tree(tree, level: str = "cheap") -> list[Finding]:
    """Checks for one :class:`~repro.core.sparsify.SparsifiedMSF`.

    Cheap: the delta-maintained ``msf_weight`` against a full
    recomputation, and the root MSF ids against the edge registry.
    Structural: recurse into every materialized node engine (and the
    engine arena, when pooling is on).  Full: additionally the Kruskal
    oracle over the *global* edge set against the root forest.
    """
    rank = _rank(level)
    out: list[Finding] = []

    def weight_pair() -> None:
        ids = tree.msf_ids()
        missing = [eid for eid in ids if eid not in tree.edges]
        if missing:
            out.append(Finding(
                "tree", f"root MSF ids {missing[:5]} absent from the edge "
                f"registry", "cheap"))
            return
        inc = tree.msf_weight()
        ref = tree.msf_weight_recomputed()
        if not _weights_agree(inc, ref):
            out.append(Finding(
                "tree", f"incremental MSF weight {inc!r} != recomputed "
                f"{ref!r}", "cheap"))

    _guard(out, "tree", "cheap", weight_pair)
    if rank >= 1:
        for key, node in sorted(tree.nodes.items()):
            if node.has_engine:
                for f in check_reducer(node.engine, level):
                    out.append(Finding(
                        f.component, f"node {key!r}: {f.message}", f.level))
        if tree._pool is not None:
            out.extend(check_pool(tree._pool, level))
    if rank >= 2:
        def forest() -> None:
            from ..reference.oracle import kruskal
            want = kruskal((u, v, w, eid)
                           for eid, (u, v, w) in tree.edges.items())
            got = tree.msf_ids()
            if got != want:
                out.append(Finding(
                    "tree", f"root forest != Kruskal MSF: extra="
                    f"{sorted(got - want)[:5]} missing="
                    f"{sorted(want - got)[:5]}", level))
        _guard(out, "tree", level, forest)
    return out


# ------------------------------------------------------------------ core


def check_core(core, level: str = "cheap") -> list[Finding]:
    """Checks for a *bare* core engine (``SparseDynamicMSF`` or its
    parallel subclass), outside any facade.

    Cheap: the delta-maintained ``msf_weight`` against a full
    recomputation over the registered edge set.  Structural and up: the
    exhaustive :func:`repro.core.audit.audit` pass (tours, LSDS
    aggregates, matrix ``C``) plus :func:`check_machine` when the engine
    carries a PRAM machine.
    """
    rank = _rank(level)
    out: list[Finding] = []

    def weight_pair() -> None:
        inc = core.msf_weight()
        ref = core.msf_weight_recomputed()
        if not _weights_agree(inc, ref):
            out.append(Finding(
                "core", f"incremental MSF weight {inc!r} != recomputed "
                f"{ref!r}", "cheap"))

    _guard(out, "core", "cheap", weight_pair)
    if rank < 1:
        return out

    def full_audit() -> None:
        from ..core.audit import audit
        audit(core)

    _guard(out, "core", level, full_audit)
    space = getattr(getattr(core, "fabric", None), "space", None)
    colm = getattr(space, "colm", None)
    if colm is not None:
        def mirror_agrees() -> None:
            for msg in colm.verify_against(space.C):
                out.append(Finding("columnar", msg, level))
        _guard(out, "columnar", level, mirror_agrees)
    compm = getattr(space, "compm", None)
    if compm is not None:
        def flat_mirror_agrees() -> None:
            for msg in compm.verify_against(space.C):
                out.append(Finding("compiled", msg, level))
        _guard(out, "compiled", level, flat_mirror_agrees)
    out.extend(_sparse_and_lct_findings(core, space, level))
    machine = getattr(core, "machine", None)
    if machine is not None:
        out.extend(check_machine(machine, level))
    return out


# ----------------------------------------------------------------- serve


def check_batched(front, level: str = "cheap") -> list[Finding]:
    """Checks for one :class:`~repro.serve.batched.BatchedMSF` front.

    Audits the serving layer's own bookkeeping (the ``_live`` id set vs
    the authoritative ``_edges`` registry vs the backend's edge count;
    pending ops excluded -- they have not been applied) and recurses
    into the backend at the same tier.
    """
    out: list[Finding] = []

    def registries() -> None:
        live = front._live
        edges = front._edges
        if live != set(edges):
            extra = sorted(live - set(edges))[:5]
            missing = sorted(set(edges) - live)[:5]
            out.append(Finding(
                "serve", f"_live does not match the edge registry: "
                f"extra={extra} missing={missing}", "cheap"))
        got = front._impl.edge_count()
        if got != len(edges):
            out.append(Finding(
                "serve", f"backend reports {got} edges, registry holds "
                f"{len(edges)}", "cheap"))

    _guard(out, "serve", "cheap", registries)
    out.extend(check_engine(front._impl, level))
    out.extend(check_durability(front, level))
    return out


def check_durability(front, level: str = "cheap") -> list[Finding]:
    """Checks for a front's attached durable sink (empty when off).

    Cheap: the log's tail seq must equal the front's epoch (a lost
    acknowledged record shows up here before the next append trips on
    it).  Structural and up: the full checksum + hash-chain scan of the
    log (:meth:`~repro.persist.wal.OpLog.verify`) and file validation of
    every snapshot -- a torn WAL record or truncated snapshot becomes a
    ``durability`` finding, never a silent replay hazard.
    """
    rank = _rank(level)
    sink = getattr(front, "_durable", None)
    if sink is None:
        return []
    out: list[Finding] = []

    def seq_sync() -> None:
        last = sink.log.last_seq()
        anchored = max(last, sink.log.base_seq())
        if not sink.suspended and anchored != front._epoch:
            out.append(Finding(
                "durability", f"durable log tail at seq {anchored}, "
                f"front epoch is {front._epoch}", "cheap"))

    _guard(out, "durability", "cheap", seq_sync)
    if rank < 1:
        return out

    def log_scan() -> None:
        for msg in sink.log.verify():
            out.append(Finding("durability", msg, level))

    def snapshots_valid() -> None:
        from ..persist.snapshot import load_snapshot
        from ..resilience.errors import WALCorruptionError
        for path in _snapshot_paths(sink.directory):
            try:
                load_snapshot(path)
            except WALCorruptionError as exc:
                out.append(Finding(
                    "durability", f"invalid snapshot {path}: {exc}",
                    level))

    _guard(out, "durability", level, log_scan)
    _guard(out, "durability", level, snapshots_valid)
    return out


def _snapshot_paths(directory: str) -> list[str]:
    from ..persist.snapshot import list_snapshots
    return list_snapshots(directory)


def check_cluster(front, level: str = "cheap") -> list[Finding]:
    """Checks for one :class:`~repro.serve.clustered.ClusterMSF` front.

    Cheap: the facade's ``_live`` set vs the authoritative registry, the
    per-home eid partition tiling the registry exactly, the boundary
    engine's edge count, and the coordinator-folded ``msf_weight``
    against a recomputation over the merged forest.  Structural: recurse
    into the merge engine (:func:`check_reducer`) and the boundary tree
    (:func:`check_tree`), and cross-check the SQLite store (edge count,
    batch seq, one live claim per shard).  Full: additionally the
    Kruskal oracle over the *global* registry against the merged forest,
    and every live worker's shard fingerprint against a never-crashed
    twin built coordinator-side from the registry.
    """
    from ..cluster.store import BOUNDARY
    rank = _rank(level)
    out: list[Finding] = []
    coord = front._coord

    def registries() -> None:
        live = front._live
        edges = front._edges
        if live != set(edges):
            extra = sorted(live - set(edges))[:5]
            missing = sorted(set(edges) - live)[:5]
            out.append(Finding(
                "cluster", f"_live does not match the edge registry: "
                f"extra={extra} missing={missing}", "cheap"))
        homed: set[int] = set()
        total = 0
        for home, eids in coord.home_eids.items():
            total += len(eids)
            homed |= eids
        if homed != set(edges) or total != len(edges):
            out.append(Finding(
                "cluster", f"per-home eid sets do not tile the registry "
                f"({total} homed ids over {len(edges)} edges)", "cheap"))
        nb = coord.boundary.edge_count()
        want = len(coord.home_eids[BOUNDARY])
        if nb != want:
            out.append(Finding(
                "cluster", f"boundary engine holds {nb} edges, registry "
                f"assigns it {want}", "cheap"))

    def weight_pair() -> None:
        inc = coord.msf_weight
        edges = front._edges
        ref = sum(edges[eid][2] for eid in coord.msf_ids())
        if not _weights_agree(inc, ref):
            out.append(Finding(
                "cluster", f"folded MSF weight {inc!r} != recomputed "
                f"{ref!r}", "cheap"))

    _guard(out, "cluster", "cheap", registries)
    _guard(out, "cluster", "cheap", weight_pair)
    if rank >= 1:
        for f in check_reducer(coord.merge, level):
            out.append(Finding(
                f.component, f"merge engine: {f.message}", f.level))
        for f in check_tree(coord.boundary, level):
            out.append(Finding(
                f.component, f"boundary engine: {f.message}", f.level))

        def store_sync() -> None:
            got = coord.store.edge_count()
            if got != len(front._edges):
                out.append(Finding(
                    "cluster", f"store registry holds {got} edges, "
                    f"coordinator holds {len(front._edges)}", level))
            if coord.store.last_seq() != coord.seq:
                out.append(Finding(
                    "cluster", f"store batch seq {coord.store.last_seq()} "
                    f"!= coordinator seq {coord.seq}", level))
            for s in coord.shard_map.shards():
                claim = coord.store.claim_of(s)
                if claim is None:
                    out.append(Finding(
                        "cluster", f"shard {s} has no claim", level))
                elif claim["worker_id"] != coord.workers[s].worker_id:
                    out.append(Finding(
                        "cluster", f"shard {s} claimed by "
                        f"{claim['worker_id']!r}, coordinator expects "
                        f"{coord.workers[s].worker_id!r}", level))

        _guard(out, "cluster", level, store_sync)
    if rank >= 2:
        def forest() -> None:
            from ..reference.oracle import kruskal
            want = kruskal((u, v, w, eid)
                           for eid, (u, v, w) in front._edges.items())
            got = coord.msf_ids()
            if got != want:
                out.append(Finding(
                    "cluster", f"merged forest != Kruskal MSF: extra="
                    f"{sorted(got - want)[:5]} missing="
                    f"{sorted(want - got)[:5]}", level))

        def workers() -> None:
            from ..cluster.worker import ShardEngine
            for s in coord.shard_map.shards():
                lo, hi = coord.shard_map.bounds(s)
                twin = ShardEngine(lo, hi)
                twin.rebuild_from(
                    (eid, *front._edges[eid])
                    for eid in sorted(coord.home_eids[s]))
                reply = coord.workers[s].request(
                    ("fingerprint",), coord.reply_timeout)
                if reply[1] != twin.fingerprint():
                    out.append(Finding(
                        "cluster", f"shard {s} worker fingerprint differs "
                        f"from registry twin", level))

        _guard(out, "cluster", level, forest)
        _guard(out, "cluster", level, workers)
    out.extend(check_durability(front, level))
    return out


# ------------------------------------------------------------ dispatcher


def check_engine(impl, level: str = "cheap") -> list[Finding]:
    """Dispatch on the backend kind (the facade's ``self_check`` body)."""
    _rank(level)  # validate early
    if hasattr(impl, "nodes") and hasattr(impl, "root"):
        return check_tree(impl, level)
    if hasattr(impl, "chains"):
        return check_reducer(impl, level)
    if hasattr(impl, "_impl"):
        return check_engine(impl._impl, level)
    if hasattr(impl, "fabric"):
        return check_core(impl, level)
    raise TypeError(f"no checker for backend {type(impl).__name__}")


# ----------------------------------------------------------- fingerprint


def state_fingerprint(obj) -> tuple:
    """A comparable digest of the *logical* state of any MSF front.

    ``(sorted live edges, sorted MSF ids, MSF weight re-summed in eid
    order)`` -- deliberately excluding op counters, machine stats and
    incrementally-maintained floats, all of which recovery legitimately
    perturbs (a rebuilt engine re-charges its work).  Because the MSF
    under the strict ``(weight, eid)`` order is unique, two structures
    with equal fingerprints hold the same forest.

    Accepts :class:`~repro.core.msf.DynamicMSF`,
    :class:`~repro.serve.batched.BatchedMSF` (flush first for an exact
    read), :class:`~repro.core.sparsify.SparsifiedMSF` and
    :class:`~repro.core.degree.DegreeReducer`.
    """
    edges = tuple(sorted(_edge_list(obj)))
    by_eid = {eid: w for eid, _u, _v, w in edges}
    msf = tuple(sorted(obj.msf_ids()))
    weight = math.fsum(by_eid[eid] for eid in msf)
    return (edges, msf, weight)


def _edge_list(obj) -> Iterable[tuple[int, int, int, float]]:
    if hasattr(obj, "_edges") and hasattr(obj, "_pending"):  # BatchedMSF
        return ((eid, u, v, w) for eid, (u, v, w) in obj._edges.items())
    if hasattr(obj, "_impl"):                                # DynamicMSF
        return _edge_list(obj._impl)
    if hasattr(obj, "nodes") and hasattr(obj, "root"):       # SparsifiedMSF
        return ((eid, u, v, w) for eid, (u, v, w) in obj.edges.items())
    if hasattr(obj, "chains"):                               # DegreeReducer
        return ((eid, u, v, w)
                for eid, (u, v, w, _e, _hu, _hv) in obj.real.items())
    raise TypeError(f"no edge listing for {type(obj).__name__}")
