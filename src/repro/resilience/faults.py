"""Deterministic, seeded fault injection for the engine/serving stack.

The resilience layer's premise: the paper's guarantees are *deterministic*
(Theorems 1.1/1.2/3.1), so any corrupted structure is detectable by audit
and rebuildable to an equivalent-by-invariant state.  This module supplies
the *corruption* half -- a registry of injection points threaded through
the four performance tiers stacked by PRs 1-4:

========================  ====================================================
site                      corrupts
========================  ====================================================
``pram.cell``             one interned PRAM memory cell between machine steps
``pram.plan``             a cached :class:`~repro.pram.machine.TracePlan`
                          (work/depth/n_effects skew)
``pram.fingerprint``      a verified shape-signature fingerprint entry
``tt.agg``                a 2-3-tree internal aggregate after a refresh
``arena.reset``           an engine-pool ``reset()`` post-state (a field the
                          reset discipline must have restored)
``serve.batch``           a coalesced batch op stream (drop / duplicate one)
``sparsify.weight``       the sparsification tree's incremental MSF weight
``cluster.worker``        a sharded-cluster worker process (SIGKILL mid-batch)
``wal.append``            a durable-log record (torn/partial payload)
``wal.fsync``             the durable log's acknowledged tail (lost record)
``snapshot.write``        a snapshot file (truncated before the rename)
========================  ====================================================

Zero-cost discipline
--------------------
Instrumented call sites pay exactly one module-attribute load + falsy
branch while disarmed::

    from ..resilience import faults as _faults
    ...
    if _faults.armed:
        _faults.fire("tt.agg", node=node)

the same module-level-singleton pattern as PR 3's ``_Paused`` accounting
context managers.  ``armed`` is a plain module global flipped only by
:func:`arm` / :func:`disarm` (or the :func:`injected` context manager), so
production runs never construct a plan, never hash a site name, never
enter :func:`fire`.

Determinism
-----------
A :class:`FaultPlan` is a list of :class:`Fault` records -- *(site, nth
visit, param)* -- optionally generated from a seed.  Each armed call site
increments a per-site visit counter; a fault fires exactly when its site's
counter reaches its ``nth``.  Replaying the same workload with the same
plan therefore injects bit-identical corruption, which is what lets the
soak harness compare a faulted run against a never-faulted twin.

This module imports nothing from the rest of the library (corruptors are
duck-typed); low-level modules can import it without cycles.
"""

from __future__ import annotations

import random
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Callable, Optional

__all__ = ["SITES", "Fault", "FaultPlan", "arm", "disarm", "injected",
           "fire", "armed"]


# ---------------------------------------------------------------------------
# corruptors (duck-typed; each returns a record dict, or None to skip when
# the context offers nothing corruptible -- a *skipped* fault injected no
# corruption and is reported as such)
# ---------------------------------------------------------------------------

def _corrupt_pram_cell(param: int, ctx: dict) -> Optional[dict]:
    """Scramble one interned PRAM memory cell (float preferred, int else)."""
    mem = ctx.get("mem")
    cells = getattr(mem, "_cells", None)
    if not cells:
        return None
    n = len(cells)
    start = param % n
    int_fallback = None
    for off in range(min(n, 256)):
        aid = (start + off) % n
        try:
            val = mem.read_interned(aid)
        except Exception:
            continue
        if type(val) is float and val == val and val not in (
                float("inf"), float("-inf")):
            delta = 0.5 + (param % 3)
            mem.write_interned(aid, val + delta)
            return {"detail": f"cell #{aid}: float {val!r} += {delta}"}
        if int_fallback is None and type(val) is int and type(val) is not bool:
            int_fallback = (aid, val)
    if int_fallback is not None:
        aid, val = int_fallback
        mem.write_interned(aid, val ^ (1 + param % 7))
        return {"detail": f"cell #{aid}: int {val!r} ^= {1 + param % 7}"}
    return None


def _corrupt_pram_plan(param: int, ctx: dict) -> Optional[dict]:
    """Skew a cached TracePlan's recorded stats / declared effect count."""
    plan = ctx.get("plan")
    if plan is None:
        return None
    variant = param % 3
    label = getattr(plan, "label", "?")
    if variant == 0:
        delta = 1 + param % 7
        plan.work += delta
        return {"detail": f"plan {label!r}: work += {delta}"}
    if variant == 1:
        plan.depth += 1
        return {"detail": f"plan {label!r}: depth += 1"}
    if getattr(plan, "n_effects", None) is not None:
        plan.n_effects += 1
        return {"detail": f"plan {label!r}: n_effects += 1"}
    plan.work += 1
    return {"detail": f"plan {label!r}: work += 1 (no n_effects)"}


def _corrupt_pram_fingerprint(param: int, ctx: dict) -> Optional[dict]:
    """Bit-flip one packed step entry of a verified shape fingerprint."""
    fps = ctx.get("fps")
    if not fps:
        return None
    j = param % len(fps)
    fp = fps[j]
    if not fp:
        return None
    k = param % len(fp)
    new = list(fp)
    new[k] ^= 1 << (param % 21)
    fps[j] = tuple(new)
    return {"detail": f"verified fingerprint [{j}][{k}] bit {param % 21} "
                      f"flipped"}


def _corrupt_tt_agg(param: int, ctx: dict) -> Optional[dict]:
    """Tamper one ancestor aggregate of a just-refreshed 2-3-tree leaf."""
    node = ctx.get("node")
    ancestors = []
    cur = getattr(node, "parent", None)
    while cur is not None:
        ancestors.append(cur)
        cur = cur.parent
    if not ancestors:
        return None
    target = ancestors[param % len(ancestors)]
    agg = target.agg
    if not (isinstance(agg, tuple) and len(agg) == 2):
        return None
    a, b = agg
    if isinstance(a, int) and isinstance(b, int):
        target.agg = (a + 1, b)                   # BT_c (units, edges)
        return {"detail": f"BT agg {agg!r} -> {(a + 1, b)!r} at height "
                          f"{target.height}"}
    try:                                          # LSDS (cadj, memb) arrays
        i = param % len(b)
        b[i] = not bool(b[i])
        return {"detail": f"LSDS memb[{i}] flipped at height "
                          f"{target.height}"}
    except Exception:
        return None


def _corrupt_arena_reset(param: int, ctx: dict) -> Optional[dict]:
    """Violate the reset-at-release invariant on a pooled engine."""
    engine = ctx.get("engine")
    if engine is None:
        return None
    variant = param % 3
    if variant == 0:
        loops = getattr(engine, "self_loops", None)
        if loops is not None:
            loops[2 ** 30 + param] = (0, 0.0)
            return {"detail": "stray self_loops entry left after reset"}
    if variant == 1:
        pool = getattr(engine, "_pool", None)
        if pool:
            gone = pool.pop()
            return {"detail": f"gadget pool leaked node {gone}"}
    core = getattr(engine, "core", None)
    if core is not None and hasattr(core, "_w_finite"):
        core._w_finite += 1.0
        return {"detail": "core incremental weight not re-zeroed"}
    loops = getattr(engine, "self_loops", None)
    if loops is not None:
        loops[2 ** 30 + param] = (0, 0.0)
        return {"detail": "stray self_loops entry left after reset"}
    return None


def _corrupt_serve_batch(param: int, ctx: dict) -> Optional[dict]:
    """Drop or duplicate one op of a coalesced batch stream."""
    ops = ctx.get("ops")
    if not ops:
        return None
    i = param % len(ops)
    if (param // max(len(ops), 1)) % 2 == 0:
        new_ops = ops[:i] + ops[i + 1:]
        return {"detail": f"dropped op {ops[i]!r}", "ops": new_ops}
    new_ops = ops[:i + 1] + [ops[i]] + ops[i + 1:]
    return {"detail": f"duplicated op {ops[i]!r}", "ops": new_ops}


def _corrupt_sparsify_weight(param: int, ctx: dict) -> Optional[dict]:
    """Skew the sparsification tree's delta-maintained MSF weight."""
    tree = ctx.get("tree")
    if tree is None or not hasattr(tree, "_msf_weight"):
        return None
    delta = 1.0 + (param % 3)
    tree._msf_weight += delta
    return {"detail": f"incremental msf weight += {delta}"}


def _corrupt_columnar_col(param: int, ctx: dict) -> Optional[dict]:
    """Skew one entry of the columnar complex mirror of matrix ``C``.

    Fired from ``ChunkSpace.mirror_column`` (a write site every surgery
    passes through).  The authoritative object matrix is left intact, so
    the corruption is only observable through columnar reads -- exactly
    the desync the structural-tier array-vs-scalar cross-validation
    (``checks``) and the full audit (via columnar LSDS aggregates) must
    detect.
    """
    space = ctx.get("space")
    colm = getattr(space, "colm", None)
    if colm is None:
        return None
    cid = ctx.get("cid")
    j = cid if cid is not None else param % colm.Jcap
    i = param % colm.Jcap
    delta = complex(0.5 + param % 3, 0.0)
    colm.CC[i, j] += delta
    return {"detail": f"columnar mirror C[{i},{j}] += {delta}"}


def _corrupt_compiled_kernel(param: int, ctx: dict) -> Optional[dict]:
    """Skew one float64 of the compiled backend's flat key mirror.

    Fired from ``ChunkSpace.mirror_column`` like ``columnar.col``.  The
    authoritative object matrix stays intact; the corruption only shows
    through the native kernels' reads, which is exactly the torn
    dual-write the structural tier's ``compm.verify_against`` detects.
    """
    space = ctx.get("space")
    compm = getattr(space, "compm", None)
    if compm is None:
        return None
    cid = ctx.get("cid")
    Jcap = compm.Jcap
    j = cid if cid is not None else param % Jcap
    i = param % Jcap
    delta = 0.5 + param % 3
    view = memoryview(compm.buf).cast("d")
    view[2 * (i * Jcap + j)] += delta
    return {"detail": f"compiled mirror C[{i},{j}] weight += {delta}"}


def _tear_wal_record(param: int, ctx: dict) -> Optional[dict]:
    """Truncate a WAL record's ops payload mid-write (torn record).

    Value-returning like ``serve.batch``: the append proceeds with the
    truncated payload but the checksum computed over the *original*
    bytes, exactly the on-disk shape of a crash mid-append.  Detected by
    the structural-tier log scan and classified at restore time
    (dropped-and-reported when final, ``WALCorruptionError`` otherwise).
    """
    payload = ctx.get("payload")
    if not payload:
        return None
    cut = param % len(payload)
    return {"detail": f"WAL record seq={ctx.get('seq')} payload torn at "
                      f"byte {cut}/{len(payload)}",
            "payload": payload[:cut]}


def _lose_wal_tail(param: int, ctx: dict) -> Optional[dict]:
    """Drop the just-committed WAL record (power-cut lost tail).

    ``synchronous=NORMAL`` trades the power-loss window for speed; this
    corruptor models that window by deleting the record the caller just
    had acknowledged.  The front's next append lands past the log's
    tail and raises a structured ``WALCorruptionError`` -- a lost
    durable write must never pass silently.
    """
    log = ctx.get("log")
    seq = ctx.get("seq")
    if log is None or seq is None:
        return None
    log._drop_record(seq)
    return {"detail": f"WAL record seq={seq} lost after acknowledged "
                      f"commit"}


def _truncate_snapshot(param: int, ctx: dict) -> Optional[dict]:
    """Truncate a snapshot file's bytes before the atomic rename.

    Models a crash (or full disk) mid-serialization: the visible file is
    complete-looking but short.  The file checksum catches it; restore
    skips-and-reports the candidate and anchors on an older snapshot.
    """
    data = ctx.get("data")
    if not data:
        return None
    cut = param % len(data)
    return {"detail": f"snapshot seq={ctx.get('seq')} truncated at byte "
                      f"{cut}/{len(data)}",
            "data": data[:cut]}


def _kill_cluster_worker(param: int, ctx: dict) -> Optional[dict]:
    """SIGKILL one live worker of a sharded serving cluster.

    Unlike the in-place corruptors above this one is a *process* fault:
    the coordinator must notice the silence (broken pipe / liveness probe
    / stale store heartbeat) and walk the dead-worker recovery ladder.
    """
    coord = ctx.get("coordinator")
    if coord is None:
        return None
    victim = coord.fault_kill_worker(param)
    if victim is None:
        return None
    return {"detail": f"SIGKILLed cluster worker {victim}"}


#: site name -> (description, corruptor)
SITES: dict[str, tuple[str, Callable[[int, dict], Optional[dict]]]] = {
    "pram.cell": (
        "corrupt one interned PRAM memory cell between machine steps",
        _corrupt_pram_cell),
    "pram.plan": (
        "skew a cached TracePlan's recorded stats / effect count",
        _corrupt_pram_plan),
    "pram.fingerprint": (
        "bit-flip a verified shape-signature fingerprint entry",
        _corrupt_pram_fingerprint),
    "tt.agg": (
        "tamper a 2-3-tree internal aggregate after a refresh",
        _corrupt_tt_agg),
    "arena.reset": (
        "leave a field unreset on an engine entering the arena free-list",
        _corrupt_arena_reset),
    "serve.batch": (
        "drop or duplicate one op of a coalesced serving batch",
        _corrupt_serve_batch),
    "sparsify.weight": (
        "skew the sparsification tree's incremental MSF weight",
        _corrupt_sparsify_weight),
    "columnar.col": (
        "skew one entry of the columnar complex mirror of matrix C",
        _corrupt_columnar_col),
    "compiled.kernel": (
        "skew one float64 of the compiled backend's flat key mirror",
        _corrupt_compiled_kernel),
    "cluster.worker": (
        "SIGKILL one live worker process of a sharded serving cluster",
        _kill_cluster_worker),
    "wal.append": (
        "tear one durable-log record's payload mid-append",
        _tear_wal_record),
    "wal.fsync": (
        "lose the just-acknowledged durable-log tail record",
        _lose_wal_tail),
    "snapshot.write": (
        "truncate one snapshot file's bytes before the atomic rename",
        _truncate_snapshot),
}


# ---------------------------------------------------------------------------
# plans
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class Fault:
    """One scheduled corruption: fire on the ``nth`` visit to ``site``."""

    site: str
    nth: int
    param: int = 0

    def __post_init__(self) -> None:
        if self.site not in SITES:
            raise ValueError(f"unknown injection site {self.site!r}; "
                             f"registered: {sorted(SITES)}")
        if self.nth < 0:
            raise ValueError("nth must be >= 0")


@dataclass
class FaultPlan:
    """A deterministic schedule of faults plus the record of what fired.

    ``visits`` counts armed passes through each site; ``log`` records every
    fault that came due -- ``outcome`` is ``"injected"`` when the corruptor
    mutated state and ``"skipped"`` when the context offered nothing
    corruptible (a skipped fault provably injected no corruption).
    """

    faults: list[Fault] = field(default_factory=list)
    label: str = ""
    visits: dict[str, int] = field(default_factory=dict)
    log: list[dict] = field(default_factory=list)

    def __post_init__(self) -> None:
        self._due: dict[tuple[str, int], Fault] = {
            (f.site, f.nth): f for f in self.faults}

    @classmethod
    def scheduled(cls, seed: int, *, sites: Optional[list[str]] = None,
                  n_faults: int = 8, horizon: int = 200,
                  label: str = "") -> "FaultPlan":
        """Seed-derived schedule over ``sites`` (default: all registered)."""
        rng = random.Random(seed)
        sites = list(SITES) if sites is None else list(sites)
        seen: set[tuple[str, int]] = set()
        faults: list[Fault] = []
        for _ in range(n_faults):
            for _attempt in range(64):
                site = rng.choice(sites)
                nth = rng.randrange(horizon)
                if (site, nth) not in seen:
                    seen.add((site, nth))
                    faults.append(Fault(site, nth, rng.randrange(1 << 20)))
                    break
        faults.sort(key=lambda f: (f.site, f.nth))
        return cls(faults=faults, label=label or f"seed={seed}")

    # -- firing ------------------------------------------------------------

    def fire(self, site: str, ctx: dict) -> Optional[dict]:
        visit = self.visits.get(site, 0)
        self.visits[site] = visit + 1
        fault = self._due.get((site, visit))
        if fault is None:
            return None
        err: Optional[str] = None
        try:
            rec = SITES[site][1](fault.param, ctx)
        except Exception as exc:  # a corruptor must never take down the host
            rec = None
            err = f"corruptor error: {exc!r}"
        detail = (rec["detail"] if rec is not None
                  else err or "context not corruptible")
        entry = {
            "site": site, "nth": visit, "param": fault.param,
            "outcome": "injected" if rec is not None else "skipped",
            "detail": detail,
        }
        self.log.append(entry)
        if rec is None:
            return None
        # value-returning corruption (serve.batch ops, wal.append payload,
        # snapshot.write data): pass every non-detail key back to the site
        extra = {k: v for k, v in rec.items() if k != "detail"}
        if extra:
            entry["replaced"] = sorted(extra)
            if "ops" in extra:
                entry["replaced_ops"] = True
            return {**extra, "entry": entry}
        return {"entry": entry}

    # -- reporting ---------------------------------------------------------

    def injected(self) -> list[dict]:
        return [e for e in self.log if e["outcome"] == "injected"]

    def skipped(self) -> list[dict]:
        return [e for e in self.log if e["outcome"] == "skipped"]

    def unreached(self) -> list[Fault]:
        """Scheduled faults whose site never accumulated enough visits."""
        fired = {(e["site"], e["nth"]) for e in self.log}
        return [f for f in self.faults if (f.site, f.nth) not in fired]

    def report(self) -> dict:
        return {
            "label": self.label,
            "scheduled": len(self.faults),
            "injected": len(self.injected()),
            "skipped": len(self.skipped()),
            "unreached": len(self.unreached()),
            "visits": dict(self.visits),
            "log": list(self.log),
        }


# ---------------------------------------------------------------------------
# module-level arming (the zero-cost-when-disarmed switch)
# ---------------------------------------------------------------------------

#: checked by every instrumented call site; plain global, no indirection
armed: bool = False
_plan: Optional[FaultPlan] = None


def arm(plan: FaultPlan) -> None:
    """Arm ``plan``; instrumented sites start feeding it visits."""
    global armed, _plan
    _plan = plan
    armed = True


def disarm() -> None:
    global armed, _plan
    armed = False
    _plan = None


def active_plan() -> Optional[FaultPlan]:
    return _plan


@contextmanager
def injected(plan: FaultPlan):
    """``with faults.injected(plan): ...`` -- arm for the block only."""
    arm(plan)
    try:
        yield plan
    finally:
        disarm()


def fire(site: str, **ctx: Any) -> Optional[dict]:
    """Offer the active plan a visit to ``site``.

    Returns ``None`` when nothing fired; otherwise a dict whose optional
    ``"ops"`` key carries replacement data for sites (``serve.batch``)
    whose corruption is value-returning rather than in-place.
    """
    plan = _plan
    if not armed or plan is None:
        return None
    return plan.fire(site, ctx)
