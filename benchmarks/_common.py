"""Shared helpers for the experiment harness.

Every experiment module exposes ``run_experiment(fast=False) -> str`` (the
rendered table(s) + verdicts) and at least one pytest-benchmark test;
``run_experiments.py`` calls the former to regenerate EXPERIMENTS.md data.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass
from typing import Callable, Optional

from repro.analysis.tables import render_table

__all__ = ["PerUpdate", "drive_core_measured", "drive_parallel_measured",
           "summary_row", "render_table", "banner"]


@dataclass
class PerUpdate:
    """Per-update cost samples of one run."""

    samples: list[float]

    @property
    def mean(self) -> float:
        return statistics.fmean(self.samples) if self.samples else 0.0

    @property
    def p99(self) -> float:
        if not self.samples:
            return 0.0
        s = sorted(self.samples)
        return s[min(len(s) - 1, int(0.99 * len(s)))]

    @property
    def max(self) -> float:
        return max(self.samples) if self.samples else 0.0


def drive_core_measured(engine, ops, *, eid_base: int = 10_000,
                        want: Optional[Callable] = None) -> PerUpdate:
    """Replay an op stream on a core engine, sampling ops-per-update.

    ``want`` filters which updates are sampled, e.g. only deletions
    (``lambda op: op[0] == "del"``).
    """
    handles = {}
    samples: list[float] = []
    idx = 0
    counter = engine.ops
    for op in ops:
        counter.mark()
        if op[0] == "ins":
            _t, u, v, w = op
            handles[idx] = engine.insert_edge(u, v, w, eid=eid_base + idx)
        else:
            engine.delete_edge(handles.pop(op[1]))
        if want is None or want(op):
            samples.append(counter.since_mark())
        idx += 1
    return PerUpdate(samples)


def drive_parallel_measured(engine, ops, *, eid_base: int = 10_000):
    """Replay on the parallel engine; returns its KernelStats list."""
    handles = {}
    idx = 0
    for op in ops:
        if op[0] == "ins":
            _t, u, v, w = op
            handles[idx] = engine.insert_edge(u, v, w, eid=eid_base + idx)
        else:
            engine.delete_edge(handles.pop(op[1]))
        idx += 1
    return engine.update_stats


def summary_row(label, per: PerUpdate) -> list:
    return [label, len(per.samples), round(per.mean, 1), per.p99, per.max]


def banner(title: str, body: str) -> str:
    bar = "#" * max(len(title) + 4, 40)
    return f"{bar}\n# {title}\n{bar}\n{body}\n"
