"""E1 -- Theorem 1.2: sequential worst-case updates cost Theta(sqrt(n log n)).

Sweep n, replay the adversarial mid-tree-cut workload (the worst case the
theorem bounds: every deletion splits one large Euler tour and runs a full
MWR search), and fit the measured per-update elementary-op counts against
candidate growth laws.  The winning law should be ``sqrt(n log n)`` /
``sqrt(n)``-family, and emphatically not ``n``-family.
"""

from __future__ import annotations

from _common import banner, drive_core_measured, render_table, summary_row

from repro.analysis.fits import classify_growth, loglog_slope
from repro.core.seq_msf import SparseDynamicMSF
from repro.workloads import adversarial_cuts

NS_FULL = [256, 512, 1024, 2048, 4096, 8192]
NS_FAST = [256, 512, 1024]


def collect(ns, rounds: int = 40):
    out = []
    for n in ns:
        eng = SparseDynamicMSF(n)
        per = drive_core_measured(eng, adversarial_cuts(n, rounds),
                                  want=lambda op: op[0] == "del")
        out.append((n, per))
    return out


def run_experiment(fast: bool = False) -> str:
    data = collect(NS_FAST if fast else NS_FULL, rounds=15 if fast else 40)
    rows = [summary_row(n, per) for n, per in data]
    table = render_table(["n", "deletions", "ops mean", "ops p99", "ops max"],
                         rows, title="E1: sequential per-deletion cost "
                                     "(adversarial mid-tree cuts)")
    ns = [n for n, _ in data]
    maxima = [per.max for _, per in data]
    slope = loglog_slope(ns, maxima)
    law, res = classify_growth(ns, maxima,
                               ["log^2 n", "sqrt(n)", "sqrt(n log n)",
                                "sqrt(n) log n", "n", "n log n"])
    verdict = (f"log-log slope of worst-case cost: {slope:.3f} "
               f"(paper: 0.5 + o(1))\n"
               f"best-fit law: {law} (rms residual {res:.3f}); "
               f"claim Theta(sqrt(n log n)) -> "
               f"{'CONSISTENT' if 'sqrt' in law else 'INCONSISTENT'}")
    return banner("E1 sequential scaling", table + "\n" + verdict)


def test_e1_benchmark(benchmark):
    def once():
        data = collect([512], rounds=10)
        return data[0][1].max

    worst = benchmark(once)
    assert worst > 0
    benchmark.extra_info["worst_ops_n512"] = worst


def test_e1_shape():
    data = collect(NS_FAST, rounds=12)
    ns = [n for n, _ in data]
    maxima = [p.max for _, p in data]
    slope = loglog_slope(ns, maxima)
    assert 0.3 < slope < 0.85, slope  # sqrt-family, not linear


if __name__ == "__main__":
    print(run_experiment())
