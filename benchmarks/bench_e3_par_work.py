"""E3 -- Theorem 1.1: parallel work O(sqrt(n) log n), processors O(sqrt n).

Same sweep as E2; verifies the work/processor scaling and prints the
work *breakdown by kernel label*, which locates the extra log-factor the
paper's conclusion leaves open (per-column LSDS refreshes dominate).
"""

from __future__ import annotations

import math
from collections import defaultdict

from _common import banner, render_table

from repro.analysis.fits import classify_growth, loglog_slope
from repro.core.par import ParallelDynamicMSF
from repro.workloads import adversarial_cuts

NS_FULL = [256, 512, 1024, 2048]
NS_FAST = [128, 256]


def collect(ns, rounds: int = 12):
    out = []
    for n in ns:
        eng = ParallelDynamicMSF(n)
        # per-label work breakdown slices the whole run's launch log:
        # opt out of the bounded history ring before the workload runs
        eng.machine.history.set_cap(None)
        mark = len(eng.machine.history)
        handles = {}
        idx = 0
        for op in adversarial_cuts(n, rounds):
            if op[0] == "ins":
                _t, u, v, w = op
                handles[idx] = eng.insert_edge(u, v, w, eid=10_000 + idx)
            else:
                eng.delete_edge(handles.pop(op[1]))
            idx += 1
        dels = [s for s in eng.update_stats if s.label == "delete"]
        by_label: dict[str, int] = defaultdict(int)
        for st in eng.machine.history[mark:]:
            by_label[st.label or "?"] += st.work
        out.append({
            "n": n,
            "work_max": max(s.work for s in dels),
            "procs_max": max(s.processors for s in dels),
            "breakdown": dict(by_label),
        })
    return out


def run_experiment(fast: bool = False) -> str:
    data = collect(NS_FAST if fast else NS_FULL, rounds=6 if fast else 12)
    ns = [d["n"] for d in data]
    rows = [[d["n"], d["work_max"],
             round(d["work_max"] / (math.sqrt(d["n"]) * math.log2(d["n"])), 1),
             d["procs_max"],
             round(d["procs_max"] / math.sqrt(d["n"]), 1)] for d in data]
    table = render_table(
        ["n", "work max", "work/(sqrt(n)log n)", "procs max",
         "procs/sqrt(n)"],
        rows, title="E3: parallel per-deletion work and processors")
    w_law, w_res = classify_growth(ns, [d["work_max"] for d in data],
                                   ["log^2 n", "sqrt(n)", "sqrt(n) log n",
                                    "n", "n log n"])
    p_slope = loglog_slope(ns, [d["procs_max"] for d in data])
    big = data[-1]["breakdown"]
    top = sorted(big.items(), key=lambda kv: -kv[1])[:8]
    total = sum(big.values())
    bd = render_table(["kernel", "work", "share"],
                      [[k, v, f"{100 * v / total:.1f}%"] for k, v in top],
                      title=f"E3: work breakdown at n={data[-1]['n']} "
                            "(where the open-problem log factor lives)")
    verdict = (f"work best-fit: {w_law} (res {w_res:.3f}); claim "
               f"O(sqrt(n) log n) -> "
               f"{'CONSISTENT' if 'sqrt' in w_law else 'INCONSISTENT'}\n"
               f"processor log-log slope: {p_slope:.3f} (claim 0.5)")
    return banner("E3 parallel work", table + "\n" + verdict + "\n\n" + bd)


def test_e3_benchmark(benchmark):
    def once():
        return collect([128], rounds=4)[0]["work_max"]

    wmax = benchmark(once)
    benchmark.extra_info["work_max_n128"] = wmax


def test_e3_processor_scaling():
    data = collect([128, 512], rounds=5)
    p1, p2 = data[0]["procs_max"], data[1]["procs_max"]
    # 4x vertices -> ~2x processors (sqrt-law with the Jcap constant)
    assert 1.3 < p2 / p1 < 3.2, (p1, p2)


if __name__ == "__main__":
    print(run_experiment())
