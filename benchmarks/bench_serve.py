#!/usr/bin/env python3
"""Serving-layer benchmark: read/write mix + query fast path (E9 add-on).

Two measurements, both on deterministic ``query_mix`` streams so every
engine replays the identical ops:

* **mix** -- the same interleaved read/update stream driven through
  (a) the plain sparsified facade (``DynamicMSF(sparsify=True)``: every
  ``connected`` walks the root engine, every ``msf_weight`` used to sum
  the forest), (b) ``BatchedMSF`` with ``pool_size=1`` (serial,
  bit-identical gate), and (c) ``BatchedMSF`` with the default pool.
  Reads are differentially checked across engines while timing.
* **query-path** -- a prefilled graph, then a pure read burst: the
  engine-walk ``connected``/``msf_weight`` path versus the
  epoch-snapshot path, reported as a throughput ratio (the ISSUE-2
  acceptance bar is >= 3x).

Usage:
    python benchmarks/bench_serve.py                 # full profile
    python benchmarks/bench_serve.py --quick
    python benchmarks/bench_serve.py --read-ratio 0.9 --pool 4
"""

from __future__ import annotations

import argparse
import math
import random
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro import BatchedMSF, DynamicMSF  # noqa: E402
from repro.serve import default_pool_size  # noqa: E402
from repro.workloads import OpStream, churn, query_mix  # noqa: E402

PROFILES = {
    "full": dict(n=256, steps=2000, prefill=240, queries=6000),
    "quick": dict(n=128, steps=500, prefill=120, queries=1500),
}


def _drive_timed(engine, ops) -> tuple[float, OpStream]:
    stream = OpStream(engine)
    t0 = time.perf_counter()
    for op in ops:
        stream.apply(op)
    return time.perf_counter() - t0, stream


def _lagged_oracle(n: int, ops, batch_size: int) -> list:
    """Expected read answers under deferred (bounded-staleness) reads:
    updates apply in blocks of ``batch_size``, reads see the last block."""
    eng = DynamicMSF(n, sparsify=True)
    eids: dict[int, int] = {}   # original op index -> engine eid
    results: list = []
    buffered: list = []         # (original index, op)
    for i, op in enumerate(ops):
        if op[0] in ("ins", "del"):
            buffered.append((i, op))
            if len(buffered) >= batch_size:
                for j, b in buffered:
                    if b[0] == "ins":
                        eids[j] = eng.insert_edge(b[1], b[2], b[3])
                    else:
                        eng.delete_edge(eids.pop(b[1]))
                buffered.clear()
        elif op[0] == "conn":
            results.append(eng.connected(op[1], op[2]))
        else:
            results.append(eng.msf_weight())
    return results


def _check_reads(name: str, got: list, want: list) -> None:
    assert len(got) == len(want), f"{name}: read count diverged"
    for g, w in zip(got, want):
        if isinstance(g, bool):
            assert g == w, f"{name}: connectivity diverged"
        else:
            assert math.isclose(g, w, rel_tol=1e-9, abs_tol=1e-9), \
                f"{name}: msf_weight diverged ({g} != {w})"


def bench_mix(n: int, steps: int, read_ratio: float, pool: int,
              seed: int, batch_size: int = 64) -> dict:
    ops = list(query_mix(n, steps, read_ratio=read_ratio, seed=seed))
    rows: dict[str, tuple[float, OpStream]] = {}
    dt, base = _drive_timed(DynamicMSF(n, sparsify=True), ops)
    rows["facade-sparsified"] = (dt, base)
    dt, strong = _drive_timed(
        BatchedMSF(n, pool_size=1, batch_size=batch_size), ops)
    rows["batched strong p=1"] = (dt, strong)
    dt, d1 = _drive_timed(
        BatchedMSF(n, pool_size=1, batch_size=batch_size,
                   consistency="deferred"), ops)
    rows["batched deferred p=1"] = (dt, d1)
    if pool > 1:
        dt, dn = _drive_timed(
            BatchedMSF(n, pool_size=pool, batch_size=batch_size,
                       consistency="deferred"), ops)
        rows[f"batched deferred p={pool}"] = (dt, dn)
    else:
        dn = d1

    # differential gates while we're here: strong mode must agree with
    # the facade read-for-read; deferred mode with the lagged oracle.
    _check_reads("strong", strong.results, base.results)
    lagged = _lagged_oracle(n, ops, batch_size)
    _check_reads("deferred p=1", d1.results, lagged)
    if dn is not d1:
        _check_reads(f"deferred p={pool}", dn.results, lagged)
    d1.target.flush()
    dn.target.flush()
    assert ({e[:3] for e in d1.target.msf_edges()}
            == {e[:3] for e in dn.target.msf_edges()}
            == {e[:3] for e in strong.target.msf_edges()})

    print(f"\n== read/write mix  n={n} steps={steps} "
          f"read_ratio={read_ratio} batch={batch_size} ==")
    base_dt = rows["facade-sparsified"][0]
    out = {}
    for name, (dt, stream) in rows.items():
        ratio = base_dt / dt if dt else float("inf")
        stats = getattr(stream.target, "stats", None)
        note = (f"  ({stats['ops_cancelled']} ops cancelled)"
                if stats else "")
        out[name] = {"seconds": round(dt, 4),
                     "ops_per_s": round(len(ops) / dt, 1),
                     "speedup_vs_facade": round(ratio, 2)}
        print(f"  {name:<24} {len(ops) / dt:>10.1f} ops/s   "
              f"{ratio:5.2f}x vs facade-sparsified{note}")
    return out


def bench_query_path(n: int, prefill: int, queries: int, seed: int) -> dict:
    """Pure-read burst, three generations of the read path:

    * pre-change -- engine-walk ``connected`` + full-sum ``msf_weight``
      (what every query cost before this PR; the >= 3x acceptance bar
      compares against this),
    * engine walk -- same ``connected``, but the delta-maintained O(1)
      weight (this PR's incremental-weight satellite),
    * snapshot -- the epoch-versioned union-find fast path.

    Probes alternate connectivity and weight queries deterministically.
    """
    ops = list(churn(n, prefill, seed=seed))
    rng = random.Random(seed + 1)
    probes = [rng.sample(range(n), 2) for _ in range(queries)]

    naive = DynamicMSF(n, sparsify=True)
    served = BatchedMSF(n)
    stream_a, stream_b = OpStream(naive), OpStream(served)
    for op in ops:
        stream_a.apply(op)
        stream_b.apply(op)
    served.flush()
    recompute = naive._impl.msf_weight_recomputed  # the pre-change path

    def burst(conn, weight) -> tuple[float, list]:
        t0 = time.perf_counter()
        out = [conn(u, v) if i % 2 == 0 else weight()
               for i, (u, v) in enumerate(probes)]
        return time.perf_counter() - t0, out

    dt_pre, res_pre = burst(naive.connected, recompute)
    dt_walk, res_walk = burst(naive.connected, naive.msf_weight)
    dt_snap, res_snap = burst(served.connected, served.msf_weight)
    assert res_pre == res_walk or all(
        a == b if isinstance(a, bool) else math.isclose(a, b, rel_tol=1e-9)
        for a, b in zip(res_pre, res_walk))
    assert all(
        a == b if isinstance(a, bool) else math.isclose(a, b, rel_tol=1e-9)
        for a, b in zip(res_pre, res_snap)), "query fast path diverged"

    speedup = dt_pre / dt_snap if dt_snap else float("inf")
    ratio_walk = dt_walk / dt_snap if dt_snap else float("inf")
    print(f"\n== query path  n={n} prefill={prefill} queries={queries} ==")
    print(f"  pre-change (full-sum) {queries / dt_pre:>10.1f} q/s")
    print(f"  engine walk (O(1) w)  {queries / dt_walk:>10.1f} q/s")
    print(f"  epoch snapshot        {queries / dt_snap:>10.1f} q/s   "
          f"{speedup:5.2f}x vs pre-change, {ratio_walk:4.2f}x vs walk")
    return {"pre_change_q_per_s": round(queries / dt_pre, 1),
            "engine_walk_q_per_s": round(queries / dt_walk, 1),
            "snapshot_q_per_s": round(queries / dt_snap, 1),
            "speedup": round(speedup, 2)}


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--quick", action="store_true",
                    help="scaled-down profile (CI smoke)")
    ap.add_argument("--read-ratio", type=float, default=0.8)
    ap.add_argument("--pool", type=int, default=default_pool_size(),
                    help="executor pool size for the parallel variant")
    ap.add_argument("--seed", type=int, default=7)
    args = ap.parse_args(argv)

    prof = PROFILES["quick" if args.quick else "full"]
    mix = bench_mix(prof["n"], prof["steps"], args.read_ratio, args.pool,
                    args.seed)
    qp = bench_query_path(prof["n"], prof["prefill"], prof["queries"],
                          args.seed)

    ok = True
    b1 = mix["batched deferred p=1"]["speedup_vs_facade"]
    if b1 < 1.5:
        print(f"\nWARN: batched speedup {b1:.2f}x < 1.5x target")
        ok = False
    if qp["speedup"] < 3.0:
        print(f"\nWARN: query-path speedup {qp['speedup']:.2f}x < 3x target")
        ok = False
    if ok:
        print("\nOK: serving-layer speedup targets met "
              f"(batched {b1:.2f}x, query path {qp['speedup']:.2f}x)")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
