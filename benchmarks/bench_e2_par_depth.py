"""E2 -- Theorem 3.1: parallel worst-case update depth is O(log n).

Sweep n, run the adversarial mid-tree-cut workload on the EREW engine, and
measure per-update machine depth.  The profile depth/log2(n) must stay
flat (within a small band) while n grows 16x -- i.e. the measured constant
is large (hundreds of machine steps per log-factor: 4-phase tournaments,
getEdge descents and column sweeps all pay their own constants) but the
*scaling* is logarithmic, not sqrt.
"""

from __future__ import annotations

from _common import banner, drive_parallel_measured, render_table

from repro.analysis.fits import classify_growth, log_ratio_profile
from repro.core.par import ParallelDynamicMSF
from repro.workloads import adversarial_cuts

NS_FULL = [256, 512, 1024, 2048]
NS_FAST = [128, 256]


def collect(ns, rounds: int = 12):
    out = []
    for n in ns:
        eng = ParallelDynamicMSF(n)
        stats = drive_parallel_measured(eng, adversarial_cuts(n, rounds))
        dels = [s for s in stats if s.label == "delete"]
        out.append((n, max(s.depth for s in dels),
                    sum(s.depth for s in dels) / len(dels),
                    eng.machine.total.violations))
    return out


def run_experiment(fast: bool = False) -> str:
    data = collect(NS_FAST if fast else NS_FULL, rounds=6 if fast else 12)
    ns = [d[0] for d in data]
    maxima = [d[1] for d in data]
    profile = log_ratio_profile(ns, maxima)
    rows = [[n, dmax, round(dmean, 1), round(prof, 1), viol]
            for (n, dmax, dmean, viol), prof in zip(data, profile)]
    table = render_table(
        ["n", "depth max", "depth mean", "depth/log2(n)", "EREW violations"],
        rows, title="E2: parallel per-deletion depth (adversarial cuts)")
    law, res = classify_growth(ns, maxima, ["log n", "log^2 n", "sqrt(n)", "n"])
    spread = max(profile) / min(profile)
    verdict = (f"depth/log2(n) spread across the sweep: {spread:.2f}x "
               f"(flat <=> O(log n))\nbest-fit law: {law} "
               f"(rms residual {res:.3f}); claim O(log n) -> "
               f"{'CONSISTENT' if law.startswith('log') else 'INCONSISTENT'}")
    return banner("E2 parallel depth", table + "\n" + verdict)


def test_e2_benchmark(benchmark):
    def once():
        return collect([128], rounds=4)[0][1]

    dmax = benchmark(once)
    benchmark.extra_info["depth_max_n128"] = dmax


def test_e2_depth_is_logarithmic():
    data = collect([128, 512], rounds=5)
    (n1, d1, *_), (n2, d2, *_) = data
    assert d2 / d1 < 2.0, (d1, d2)  # 4x n, far less than 2x depth
    assert all(d[3] == 0 for d in data)  # EREW-clean


if __name__ == "__main__":
    print(run_experiment())
