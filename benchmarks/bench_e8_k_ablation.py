"""E8 -- ablation of the chunk-size parameter K.

The paper balances J = O(n/K) against K: sequentially ``K = sqrt(n log n)``
minimizes ``O(J log J + K)`` (Theorem 1.2's cost), while the parallel
engine prefers ``K = sqrt(n)`` (it only pays ``log K`` depth but ``O(J+K)``
processors).  Sweep K at fixed n; per-deletion cost must be U-shaped with
the minimum near the paper's choice.
"""

from __future__ import annotations

import math

from _common import banner, drive_core_measured, render_table

from repro.core.seq_msf import SparseDynamicMSF
from repro.workloads import adversarial_cuts


def sweep(n: int, ks, rounds: int = 25):
    rows = []
    for k in ks:
        eng = SparseDynamicMSF(n, K=k)
        per = drive_core_measured(eng, adversarial_cuts(n, rounds),
                                  want=lambda op: op[0] == "del")
        rows.append((k, per.mean, per.max))
    return rows


def _ks_for(n: int) -> list[int]:
    k_seq = math.isqrt(int(n * math.log2(n)))
    return sorted({8, math.isqrt(n), k_seq, 2 * k_seq, 4 * k_seq,
                   8 * k_seq, n // 2})


def run_experiment(fast: bool = False) -> str:
    ns = [512] if fast else [512, 2048]
    sections = []
    optima = {}
    for n in ns:
        k_seq = math.isqrt(int(n * math.log2(n)))
        ks = _ks_for(n)
        data = sweep(n, ks, rounds=8 if fast else 20)
        rows = [[k,
                 "sqrt(n)" if k == math.isqrt(n) else
                 ("sqrt(n log n) [paper seq]" if k == k_seq else ""),
                 round(mean, 1), mx] for (k, mean, mx) in data]
        sections.append(render_table(
            ["K", "note", "del ops mean", "del ops max"], rows,
            title=f"E8: K ablation at n={n} (J+K trade-off)"))
        best = min(data, key=lambda r: r[1])
        ends_up = data[-1][1] > best[1] and data[0][1] > best[1]
        optima[n] = best[0]
        sections.append(
            f"n={n}: optimum K={best[0]} = "
            f"{best[0] / k_seq:.1f} x sqrt(n log n); "
            f"U-shape (both extremes lose): {ends_up}")
    if len(ns) == 2:
        ratio = optima[ns[1]] / optima[ns[0]]
        expect = math.sqrt((ns[1] * math.log2(ns[1]))
                           / (ns[0] * math.log2(ns[0])))
        sections.append(
            f"optimum-K scaling {ns[0]}->{ns[1]}: {ratio:.2f}x vs "
            f"sqrt(n log n) prediction {expect:.2f}x -> "
            f"{'CONSISTENT' if 0.4 * expect <= ratio <= 2.5 * expect else 'INCONSISTENT'} "
            f"(the paper's balance point, up to the implementation's "
            f"J-side constant ~4)")
    return banner("E8 K ablation", "\n\n".join(sections))


def test_e8_benchmark(benchmark):
    rows = benchmark.pedantic(sweep, args=(256, [8, 32, 64], 6),
                              iterations=1, rounds=2)
    benchmark.extra_info["rows"] = rows


def test_e8_extremes_lose():
    n = 1024
    # the balance band (around c*sqrt(n log n), c ~= 4 for this charge
    # model) must beat both the tiny-K and the single-chunk extremes
    data = dict((k, mean) for k, mean, _mx in sweep(n, [8, 400, n // 2], 10))
    assert data[400] < data[8]
    assert data[400] < data[n // 2]


if __name__ == "__main__":
    print(run_experiment())
