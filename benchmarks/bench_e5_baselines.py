"""E5 -- implemented-baseline comparison on identical op streams.

Engines: this paper's sequential engine, the scan ablation (no LSDS),
recompute-Kruskal, and (when available) the HDT amortized baseline.  Two
views: (a) mean/p99/max per-update elementary ops -- the worst-case-vs-
amortized story: amortized structures show cost spikes the paper's
structure provably avoids; (b) wall-clock sanity.
"""

from __future__ import annotations

import time

from _common import banner, drive_core_measured, render_table

from repro.baselines.recompute import RecomputeMSF
from repro.baselines.scan import ScanDynamicMSF
from repro.core.seq_msf import SparseDynamicMSF
from repro.workloads import adversarial_cuts


def _drive_recompute(n: int, ops) -> tuple:
    eng = RecomputeMSF(n)
    handles = {}
    samples = []
    idx = 0
    for op in ops:
        eng.ops.mark()
        if op[0] == "ins":
            _t, u, v, w = op
            handles[idx] = eng.insert_edge(u, v, w, eid=10_000 + idx)
        else:
            eng.delete_edge(handles.pop(op[1]))
        if op[0] == "del":
            samples.append(eng.ops.since_mark())
        idx += 1
    return samples


def compare(n: int = 1024, rounds: int = 30) -> list[list]:
    rows = []
    for name, make in [
        ("this paper (seq engine)", lambda: SparseDynamicMSF(n)),
        ("scan ablation (no LSDS)", lambda: ScanDynamicMSF(n)),
    ]:
        eng = make()
        t0 = time.perf_counter()
        per = drive_core_measured(eng, adversarial_cuts(n, rounds),
                                  want=lambda op: op[0] == "del")
        dt = time.perf_counter() - t0
        rows.append([name, round(per.mean, 1), per.p99, per.max,
                     round(per.max / max(per.mean, 1), 2), round(dt, 3)])
    t0 = time.perf_counter()
    samples = _drive_recompute(n, adversarial_cuts(n, rounds))
    dt = time.perf_counter() - t0
    import statistics
    s = sorted(samples)
    rows.append(["recompute (Kruskal/update)", round(statistics.fmean(s), 1),
                 s[int(0.99 * (len(s) - 1))], s[-1],
                 round(s[-1] / statistics.fmean(s), 2), round(dt, 3)])
    try:
        from repro.baselines.hdt import HDTMsf
        eng = HDTMsf(n)
        handles = {}
        samples = []
        idx = 0
        t0 = time.perf_counter()
        for op in adversarial_cuts(n, rounds):
            eng.ops.mark()
            if op[0] == "ins":
                _t, u, v, w = op
                handles[idx] = eng.insert_edge(u, v, w, eid=10_000 + idx)
            else:
                eng.delete_edge(handles.pop(op[1]))
                samples.append(eng.ops.since_mark())
            idx += 1
        dt = time.perf_counter() - t0
        s = sorted(samples)
        rows.append(["HDT (amortized O(log^4 n))",
                     round(statistics.fmean(s), 1),
                     s[int(0.99 * (len(s) - 1))], s[-1],
                     round(s[-1] / statistics.fmean(s), 2), round(dt, 3)])
    except ImportError:
        pass
    return rows


def run_experiment(fast: bool = False) -> str:
    import math
    n = 256 if fast else 1024
    rounds = 10 if fast else 30
    rows = compare(n, rounds)
    table = render_table(
        ["algorithm", "del ops mean", "p99", "max", "max/mean", "wall s"],
        rows,
        title=f"E5: per-deletion cost on identical adversarial streams, n={n}")
    # constants + projected crossover vs recompute: ours = c1 sqrt(n log n),
    # recompute = c2 m ~= 1.25 c2 n on this workload
    ours = rows[0][3]
    rec = next(r for r in rows if r[0].startswith("recompute"))[3]
    c1 = ours / math.sqrt(n * math.log2(n))
    c2 = rec / (1.25 * n)
    lo = n
    while c1 * math.sqrt(lo * math.log2(lo)) >= c2 * 1.25 * lo and lo < 2 ** 42:
        lo *= 2
    verdict = (f"measured constants: ours ~= {c1:.0f} sqrt(n log n) ops, "
               f"recompute ~= {c2:.1f} m ops.\n"
               f"projected crossover (ours wins beyond): n ~= 2^{int(math.log2(lo))} "
               f"-- asymptotics as claimed, constants matter at laptop scale.\n"
               f"scan ablation: cheaper maintenance, O(J^2) queries (see the "
               f"query-cost comparison in tests/baselines); amortized "
               f"baselines show max/mean spikes this structure avoids.")
    return banner("E5 baselines", table + "\n" + verdict)


def test_e5_benchmark(benchmark):
    rows = benchmark.pedantic(compare, args=(256, 8), iterations=1, rounds=2)
    benchmark.extra_info["rows"] = [r[0] for r in rows]
    ours = rows[0]
    recompute = next(r for r in rows if r[0].startswith("recompute"))
    # recompute grows ~ m with tiny constants, ours ~ sqrt(n log n) with a
    # large constant: at n=256 recompute still wins absolute ops, but its
    # per-update cost must scale ~ m while ours stays sublinear -- checked
    # via the growth ratio between two sizes here
    rows_big = compare(1024, 8)
    ours_growth = rows_big[0][3] / ours[3]
    rec_growth = (next(r for r in rows_big if r[0].startswith("recompute"))[3]
                  / recompute[3])
    assert ours_growth < rec_growth, (ours_growth, rec_growth)


if __name__ == "__main__":
    print(run_experiment())
