"""E10 -- Theorem 1.1 end-to-end: general graphs, EREW engines, measured.

Composes Section 5.3 (parallel sparsification) with Theorem 3.1's engines:
every sparsification-tree node runs its local MSF on a strict EREW machine,
and the per-update parallel cost is the O(log n) tree walk plus the *max*
of the measured per-level depths (levels update independently), with
sum-of-sqrt processors.  Sweeping n with m ~ 4n verifies that the composed
depth stays polylogarithmic on general (unbounded-degree, multi-edge)
graphs -- the full Theorem 1.1 statement.
"""

from __future__ import annotations

import math
import random

from _common import banner, render_table

from repro.core.sparsify import SparsifiedMSF
from repro.workloads import dense_stream

NS_FULL = [16, 32, 64]
NS_FAST = [16, 32]


def run_one(n: int, deletions: int, seed: int = 0) -> dict:
    sp = SparsifiedMSF(n, parallel=True)
    rng = random.Random(seed)
    ids = []
    for u, v, w in dense_stream(n, 4 * n, seed=seed):
        ids.append(sp.insert_edge(u, v, w))
    worst = {"depth": 0, "processors": 0, "levels_touched": 0}
    for _ in range(deletions):
        msf = sorted(sp.msf_ids())
        if not msf:
            break
        sp.delete_edge(rng.choice(msf))
        cost = sp.parallel_cost_of_last_update()
        for k in worst:
            worst[k] = max(worst[k], cost[k])
    return {"n": n, "m": 4 * n, **worst,
            "violations": sp.erew_violations()}


def run_experiment(fast: bool = False) -> str:
    rows = []
    data = []
    for n in (NS_FAST if fast else NS_FULL):
        res = run_one(n, deletions=4 if fast else 8)
        data.append(res)
        rows.append([res["n"], res["m"], res["depth"],
                     round(res["depth"] / math.log2(res["n"]), 1),
                     res["processors"], res["levels_touched"],
                     res["violations"]])
    table = render_table(
        ["n", "m", "depth max", "depth/log2(n)", "procs", "levels",
         "EREW violations"],
        rows, title="E10: Theorem 1.1 composed -- general-graph MSF-edge "
                    "deletions, measured per-level EREW depth")
    r = data[-1]["depth"] / data[0]["depth"]
    growth = data[-1]["n"] / data[0]["n"]
    prof = [(d["depth"] / math.log2(d["n"])) for d in data]
    verdict = (f"depth grew {r:.2f}x over a {growth:.0f}x n range "
               f"(sqrt would give {growth ** 0.5:.1f}x); depth/log2(n) "
               f"drifts only {prof[-1] / prof[0]:.2f}x; all level engines "
               f"ran EREW-clean -> Theorem 1.1's composition holds on "
               f"general graphs.")
    return banner("E10 Theorem 1.1 on general graphs", table + "\n" + verdict)


def test_e10_benchmark(benchmark):
    res = benchmark.pedantic(run_one, args=(16, 3), iterations=1, rounds=2)
    assert res["violations"] == 0
    benchmark.extra_info.update(res)


def test_e10_depth_subpolynomial():
    a = run_one(16, 4)
    b = run_one(64, 4)
    assert b["violations"] == a["violations"] == 0
    assert b["depth"] < 3.0 * a["depth"], (a["depth"], b["depth"])


if __name__ == "__main__":
    print(run_experiment())
