"""E4 -- EREW legality: the parallel engine never shares a cell in a step.

The machine runs in strict mode during the whole workload (any same-step
read/read, write/write or read/write on one cell raises), so completing
the run *is* the verification.  The experiment also demonstrates the other
direction: (a) the one intentionally-CREW step (MWR membership
verification, Lemma 3.3's JaJa reduction) actually performs concurrent
reads when re-run under EREW policy, and (b) naive unstaggered access
patterns are rejected -- i.e. the checker has teeth.
"""

from __future__ import annotations

from _common import banner, drive_parallel_measured, render_table

from repro.core.par import ParallelDynamicMSF
from repro.pram.machine import ErewViolation, Machine, Read
from repro.workloads import adversarial_cuts, churn


def audit_run(n: int = 512, rounds: int = 15, seed: int = 3) -> dict:
    engines = [ParallelDynamicMSF(n), ParallelDynamicMSF(n)]  # strict mode
    for eng in engines:
        # whole-run label attribution reads the full launch log: opt out
        # of the default bounded history ring before driving any workload
        eng.machine.history.set_cap(None)
    drive_parallel_measured(engines[0], adversarial_cuts(n, rounds))
    handles = {}
    idx = 0
    for op in churn(n, 200, seed=seed, max_degree=3):
        if op[0] == "ins":
            _t, u, v, w = op
            handles[idx] = engines[1].insert_edge(u, v, w, eid=90_000 + idx)
        else:
            engines[1].delete_edge(handles.pop(op[1]))
        idx += 1
    out = {"kernel launches": 0, "machine steps": 0, "memory ops": 0,
           "EREW violations": 0, "CREW sections (Lemma 3.3 verify)": 0}
    for eng in engines:
        t = eng.machine.total
        out["kernel launches"] += t.launches
        out["machine steps"] += t.depth
        out["memory ops"] += t.work
        out["EREW violations"] += t.violations
        out["CREW sections (Lemma 3.3 verify)"] += sum(
            1 for s in eng.machine.history if s.label == "verify")
    return out


def checker_has_teeth() -> bool:
    """A naive concurrent read is caught by the strict machine."""
    m = Machine()
    arr = [1.0]
    sid = m.mem.register(arr)

    def reader():
        yield Read(("idx", sid, 0))

    try:
        m.run([reader(), reader()])
    except ErewViolation:
        return True
    return False


def run_experiment(fast: bool = False) -> str:
    res = audit_run(128 if fast else 512, 5 if fast else 15)
    rows = [[k, v] for k, v in res.items()]
    rows.append(["checker rejects naive concurrent read", checker_has_teeth()])
    table = render_table(["quantity", "value"], rows,
                         title="E4: EREW audit over adversarial + churn "
                               "workloads (strict mode)")
    verdict = ("every kernel completed under strict exclusive-access "
               "checking -> the implementation realizes the paper's EREW "
               "claims; the sole concurrent-read step is the Lemma 3.3 "
               "membership verification, executed as a declared CREW "
               "section and charged the JaJa O(log K) conversion factor.")
    return banner("E4 EREW legality", table + "\n" + verdict)


def test_e4_benchmark(benchmark):
    res = benchmark.pedantic(audit_run, args=(96, 4), iterations=1, rounds=2)
    assert res["EREW violations"] == 0
    benchmark.extra_info.update(res)


def test_e4_checker_teeth():
    assert checker_has_teeth()


def test_e4_strict_run_clean():
    res = audit_run(96, 4)
    assert res["EREW violations"] == 0
    assert res["kernel launches"] > 0


if __name__ == "__main__":
    print(run_experiment())
