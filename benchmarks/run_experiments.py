#!/usr/bin/env python3
"""Regenerate every table/figure of the evaluation (T1, E1-E9).

Usage:
    python benchmarks/run_experiments.py [--fast] [--only E1,E2,...]

Writes each experiment's rendered output to ``benchmarks/results/<id>.txt``
and prints everything; EXPERIMENTS.md quotes these outputs.
"""

from __future__ import annotations

import argparse
import pathlib
import sys
import time

sys.path.insert(0, str(pathlib.Path(__file__).parent))

import bench_e1_seq_scaling
import bench_e10_thm11_general
import bench_e2_par_depth
import bench_e3_par_work
import bench_e4_erew
import bench_e5_baselines
import bench_e6_sparsify
import bench_e7_lemmas
import bench_e8_k_ablation
import bench_e9_walltime
import bench_table1

EXPERIMENTS = {
    "T1": bench_table1,
    "E1": bench_e1_seq_scaling,
    "E2": bench_e2_par_depth,
    "E3": bench_e3_par_work,
    "E4": bench_e4_erew,
    "E5": bench_e5_baselines,
    "E6": bench_e6_sparsify,
    "E7": bench_e7_lemmas,
    "E8": bench_e8_k_ablation,
    "E9": bench_e9_walltime,
    "E10": bench_e10_thm11_general,
}


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--fast", action="store_true",
                    help="smaller sweeps (sanity mode)")
    ap.add_argument("--only", default="",
                    help="comma-separated experiment ids")
    args = ap.parse_args()
    wanted = ([x.strip().upper() for x in args.only.split(",") if x.strip()]
              or list(EXPERIMENTS))
    outdir = pathlib.Path(__file__).parent / "results"
    outdir.mkdir(exist_ok=True)
    for key in wanted:
        mod = EXPERIMENTS[key]
        t0 = time.perf_counter()
        text = mod.run_experiment(fast=args.fast)
        dt = time.perf_counter() - t0
        text += f"\n[{key} regenerated in {dt:.1f}s]\n"
        print(text)
        (outdir / f"{key}.txt").write_text(text)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
