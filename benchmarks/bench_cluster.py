#!/usr/bin/env python3
"""Sharded serving cluster: bit-identity gate, recovery case, speedup.

Exercises :class:`repro.serve.ClusterMSF` (PR 6) end to end:

1. **Bit-identity gate** -- the same ``worker_mix`` stream replayed at
   pool sizes {1, 2, 4} (real worker processes) must produce final
   forests, read-result streams, ``msf_weight`` and state fingerprints
   bit-identical to the serial ``BatchedMSF(pool_size=1)`` path.
2. **Kill-a-worker recovery** -- one worker is SIGKILLed mid-campaign;
   the run must detect the death, clean up the stale claim, rebuild the
   shard from the coordination store's edge registry, verify the
   rebuild's fingerprint against a never-crashed twin, and finish with
   state bit-identical to an unkilled run.
3. **Speedup** -- wall-clock of pool {2, 4} vs pool 1 on the same
   stream, reported with the host's CPU count (on a single-core box the
   multiplier measures the work *reduction* of sharding -- two
   half-size engines do less total work than one full-size engine --
   plus coordinator/worker overlap, not true parallelism).

``--smoke`` is the CI profile (~1 min); the default profile measures
the n=1024 serving configuration.  The JSON report lands at ``--out``
(default ``cluster-report.json``) and is uploaded as a CI artifact.

Usage:
    python benchmarks/bench_cluster.py --smoke --out cluster-report.json
    python benchmarks/bench_cluster.py
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.resilience.checks import state_fingerprint  # noqa: E402
from repro.serve import BatchedMSF, ClusterMSF  # noqa: E402
from repro.workloads import drive, worker_mix  # noqa: E402

PROFILES = {
    "smoke": dict(n=256, steps=800, batch=128, read_ratio=0.3,
                  cross_fraction=0.05, kill_at=300, seed=17),
    "full": dict(n=1024, steps=2000, batch=256, read_ratio=0.2,
                 cross_fraction=0.05, kill_at=800, seed=17),
}

POOLS = (1, 2, 4)


def _ops(prof: dict) -> list:
    return list(worker_mix(prof["n"], prof["steps"], shards=4,
                           cross_fraction=prof["cross_fraction"],
                           read_ratio=prof["read_ratio"],
                           seed=prof["seed"]))


def _run_cluster(prof: dict, ops: list, pool: int, *, kill_at=None):
    """One timed cluster replay; returns (elapsed, stream, front)."""
    c = ClusterMSF(prof["n"], pool_size=pool, processes=True,
                   batch_size=prof["batch"], consistency="deferred")
    from repro.workloads import OpStream
    s = OpStream(c)
    t0 = time.perf_counter()
    for i, op in enumerate(ops):
        if kill_at is not None and i == kill_at:
            c.kill_worker(1 if pool > 1 else 0)
        s.apply(op)
    c.flush()
    dt = time.perf_counter() - t0
    return dt, s, c


def identity_gate(prof: dict, ops: list) -> dict:
    """Pool {1,2,4} must be bit-identical to the serial path."""
    ref = BatchedMSF(prof["n"], sparsify=True, pool_size=1,
                     batch_size=prof["batch"], consistency="deferred")
    sref = drive(ref, ops)
    ref.flush()
    fp_ref = state_fingerprint(ref)
    rows = {}
    ok = True
    for pool in POOLS:
        dt, s, c = _run_cluster(prof, ops, pool)
        try:
            match = (s.results == sref.results
                     and c.msf_ids() == ref.msf_ids()
                     and c.msf_weight() == ref.msf_weight()
                     and state_fingerprint(c) == fp_ref)
            clean = not c.self_check("full")
            rows[f"pool{pool}"] = {
                "seconds": round(dt, 4),
                "ops_per_s": round(len(ops) / dt, 1),
                "bit_identical": match,
                "self_check_clean": clean,
                "boundary_ops": c._coord.stats["ops_boundary"],
                "recoveries": c.stats["recoveries"],
            }
            ok = ok and match and clean
            print(f"  pool={pool}: {dt:7.3f}s  {len(ops) / dt:8.1f} ops/s  "
                  f"identical={match} clean={clean}")
        finally:
            c.close()
    base = rows["pool1"]["seconds"]
    speedups = {f"x{p}": round(base / rows[f'pool{p}']['seconds'], 3)
                for p in POOLS if p > 1}
    best = max(speedups.values())
    print(f"  speedup vs pool1: {speedups}  "
          f"(cpu_count={os.cpu_count()})")
    return {"pools": rows, "speedups": speedups, "best_speedup": best,
            "ok": ok}


def recovery_gate(prof: dict, ops: list) -> dict:
    """SIGKILL mid-campaign; final state must match an unkilled twin."""
    _dt, s_twin, twin = _run_cluster(prof, ops, 2)
    dt, s, crashed = _run_cluster(prof, ops, 2, kill_at=prof["kill_at"])
    try:
        store = crashed._coord.store
        row = {
            "seconds": round(dt, 4),
            "recoveries": crashed.stats["recoveries"],
            "stale_claim_cleanups":
                len(store.events("stale-claim-cleanup")),
            "shard_rebuilds": len(store.events("shard-rebuilt")),
            "replacement_generation":
                max(w.generation for w in crashed._coord.workers.values()),
            "reads_identical": s.results == s_twin.results,
            "fingerprint_identical":
                state_fingerprint(crashed) == state_fingerprint(twin),
            "weight_identical":
                crashed.msf_weight() == twin.msf_weight(),
            "self_check_clean": not crashed.self_check("full"),
        }
        row["ok"] = (row["recoveries"] >= 1
                     and row["stale_claim_cleanups"] >= 1
                     and row["shard_rebuilds"] >= 1
                     and row["reads_identical"]
                     and row["fingerprint_identical"]
                     and row["weight_identical"]
                     and row["self_check_clean"])
        print(f"  kill@{prof['kill_at']}: recoveries={row['recoveries']} "
              f"rebuilds={row['shard_rebuilds']} "
              f"identical={row['fingerprint_identical']} "
              f"clean={row['self_check_clean']}")
        return row
    finally:
        crashed.close()
        twin.close()


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--smoke", action="store_true",
                    help="CI-sized profile (~1 min)")
    ap.add_argument("--out", type=Path,
                    default=Path("cluster-report.json"),
                    help="JSON report path")
    args = ap.parse_args(argv)

    profile = "smoke" if args.smoke else "full"
    prof = PROFILES[profile]
    ops = _ops(prof)
    n_updates = sum(1 for op in ops if op[0] in ("ins", "del"))
    print(f"cluster profile={profile} n={prof['n']} ops={len(ops)} "
          f"(updates={n_updates}) pools={POOLS}")

    print("== bit-identity gate (vs serial BatchedMSF) ==")
    ident = identity_gate(prof, ops)
    print("== kill-a-worker recovery ==")
    recov = recovery_gate(prof, ops)

    report = {
        "schema": "bench-cluster/v1",
        "profile": profile,
        "host": {
            "cpu_count": os.cpu_count(),
            "python": platform.python_version(),
            "platform": platform.platform(),
        },
        "config": {**prof, "ops": len(ops), "updates": n_updates},
        "identity": ident,
        "recovery": recov,
        "ok": ident["ok"] and recov["ok"],
    }
    args.out.parent.mkdir(parents=True, exist_ok=True)
    args.out.write_text(json.dumps(report, indent=2) + "\n")
    print(f"report -> {args.out}")
    if not report["ok"]:
        print("FAIL: identity or recovery gate broken")
        return 1
    print(f"OK: pools {POOLS} bit-identical, recovery verified, best "
          f"speedup {ident['best_speedup']}x on {os.cpu_count()} CPU(s)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
