"""E6 -- Section 5: sparsification makes per-update cost f(n), not f(m).

Fix n, sweep m from ~2n to ~n^1.7, and measure per-deletion elementary ops
on (a) the sparsification tree and (b) the plain degree-reduced engine
(whose structure is sized by n + 2m).  The sparsified cost must stay flat
in m while the unsparsified cost grows ~ sqrt(m); per-level instance sizes
follow n/2^i.
"""

from __future__ import annotations

import random

from _common import banner, render_table

from repro.analysis.fits import loglog_slope
from repro.core.degree import DegreeReducer
from repro.core.sparsify import SparsifiedMSF, _Node
from repro.workloads import dense_stream


def _total_ops(sp: SparsifiedMSF) -> int:
    return sum(node.engine.core.ops.grand_total()
               for node in sp.nodes.values() if isinstance(node, _Node))


def run_one(n: int, m: int, deletions: int, seed: int = 0):
    """Insert m edges; delete *current-MSF* edges (the expensive case whose
    cost sparsification decouples from m), measuring ops per deletion."""
    edges = dense_stream(n, m, seed=seed)
    rng = random.Random(seed + 1)
    sp = SparsifiedMSF(n)
    plain = DegreeReducer(n, max_edges=m + 8)
    id_pairs = {}  # shared eid -> present
    for u, v, w in edges:
        eid = sp.insert_edge(u, v, w)
        plain.insert_edge(u, v, w, eid=eid)
        id_pairs[eid] = True
    sp_cost = []
    pl_cost = []
    for _ in range(deletions):
        msf = sorted(sp.msf_ids())
        if not msf:
            break
        eid = rng.choice(msf)
        before = _total_ops(sp)
        sp.delete_edge(eid)
        sp_cost.append(_total_ops(sp) - before)
        plain.core.ops.mark()
        plain.delete_edge(eid)
        pl_cost.append(plain.core.ops.since_mark())
    return max(sp_cost), max(pl_cost)


def run_experiment(fast: bool = False) -> str:
    n = 32 if fast else 64
    ms = ([2 * n, 4 * n, 8 * n] if fast
          else [2 * n, 4 * n, 8 * n, 16 * n, 32 * n, 64 * n])
    rows = []
    sp_maxima, pl_maxima = [], []
    for m in ms:
        sp_max, pl_max = run_one(n, m, deletions=10 if fast else 25)
        rows.append([m, round(m / n, 1), sp_max, pl_max])
        sp_maxima.append(sp_max)
        pl_maxima.append(pl_max)
    table = render_table(
        ["m", "m/n", "sparsified del ops max", "plain del ops max"],
        rows, title=f"E6: MSF-edge deletion cost vs m at fixed n={n}")
    # The sparsified cost ramps while levels of the tree become populated
    # (at most log n levels) and then saturates at Theta(f(n)); judge the
    # claim on the saturated half of the sweep.
    half = len(ms) // 2
    sp_slope = loglog_slope(ms[half:], sp_maxima[half:])
    pl_slope = loglog_slope(ms, pl_maxima)
    sp_full = loglog_slope(ms, sp_maxima)
    verdict = (f"cost-vs-m log-log slopes: sparsified {sp_slope:.2f} on the "
               f"saturated half ({sp_full:.2f} full sweep incl. level "
               f"ramp-up; claim ~0: f(n) only), plain {pl_slope:.2f} "
               f"(grows with m) -> "
               f"{'CONSISTENT' if sp_slope < 0.15 else 'INCONSISTENT'}")
    # per-level instance sizes
    sp = SparsifiedMSF(n)
    for u, v, w in dense_stream(n, 8 * n, seed=2):
        sp.insert_edge(u, v, w)
    lvl_rows = {}
    for (level, ra, rb), node in sp.nodes.items():
        if isinstance(node, _Node):
            size = (ra[1] - ra[0]) + (0 if ra == rb else rb[1] - rb[0])
            cur = lvl_rows.setdefault(level, [level, 0, 0])
            cur[1] += 1
            cur[2] = max(cur[2], size)
    t2 = render_table(["level", "materialized nodes", "max local vertices"],
                      [lvl_rows[k] for k in sorted(lvl_rows)],
                      title="E6: sparsification-tree shape "
                            "(local size halves per level, Sec. 5.1)")
    return banner("E6 sparsification", table + "\n" + verdict + "\n\n" + t2)


def test_e6_benchmark(benchmark):
    res = benchmark.pedantic(run_one, args=(32, 128, 8), iterations=1,
                             rounds=2)
    benchmark.extra_info["sp_max, plain_max"] = res


def test_e6_flat_in_m_once_saturated():
    sp_mid, _ = run_one(32, 256, 10)
    sp_big, _ = run_one(32, 1024, 10)
    assert sp_big < 1.6 * sp_mid, (sp_mid, sp_big)


if __name__ == "__main__":
    print(run_experiment())
