"""E7 -- per-operation costs of the internal lemmas.

Measures, across an n sweep, the elementary-op cost of the structure's
primitive operations and checks the claimed orders:

* chunk split + merge: O(J + K)                (Lemma 2.2)
* UpdateAdj / LSDS ops: O(J log J)             (Lemma 2.3)
* MWR search:          O(J + K)                (Lemma 2.4)

and their parallel counterparts' depths (Lemmas 3.1-3.3): O(log K),
O(log J), O(log J + log K) -- measured as machine depth of the kernels.
"""

from __future__ import annotations

from _common import banner, render_table

from repro.analysis.fits import classify_growth
from repro.core.par import ParallelDynamicMSF
from repro.core.seq_msf import SparseDynamicMSF
from repro.workloads import path_edges

NS_FULL = [256, 512, 1024, 2048, 4096]
NS_FAST = [256, 512, 1024]


def build_long_list(cls, n, **kw):
    """One big tree (path + heavy chords) => one long Euler list with many
    chunks and real replacement candidates for the MWR search."""
    eng = cls(n, **kw)
    for i, (u, v, w) in enumerate(path_edges(n, seed=1)):
        eng.insert_edge(u, v, w, eid=10_000 + i)
    for i in range(0, n - 4, 4):
        eng.insert_edge(i, i + 3, 1000.0 + i, eid=60_000 + i)
    return eng


def seq_costs(n: int) -> dict:
    eng = build_long_list(SparseDynamicMSF, n)
    fab = eng.fabric
    ops = eng.ops
    # a chunk split + merge (restores the invariant afterwards)
    lst = fab.list_of(eng.vertices[n // 2].pc.chunk)
    chunk = lst.first_chunk()
    ops.mark()
    c1, c2 = fab.split_chunk_balanced(chunk)
    split_cost = ops.since_mark()
    ops.mark()
    fab.merge_chunks(c1, c2)
    merge_cost = ops.since_mark()
    fab.fix_chunk(c1)
    # UpdateAdj
    ops.mark()
    fab.registry.update_adj(lst.first_chunk())
    upd_cost = ops.since_mark()
    # MWR: cut a middle tree edge, search, reconnect via the engine
    mid_edge = eng.edges[10_000 + n // 2]
    ops.mark()
    eng.delete_edge(mid_edge)
    del_cost = ops.since_mark()
    space = fab.space
    return {"n": n, "J": space.live_ids, "K": space.K,
            "split": split_cost, "merge": merge_cost,
            "update_adj": upd_cost, "tree_delete(MWR)": del_cost}


def par_depths(n: int) -> dict:
    eng = build_long_list(ParallelDynamicMSF, n)
    # unbounded log from here on: the per-label depth attribution below
    # must see every launch of the deletion (mark-based slicing would be
    # silently wrong if the ring dropped post-mark entries)
    eng.machine.history.set_cap(None)
    mark = len(eng.machine.history)
    mid_edge = eng.edges[10_000 + n // 2]
    eng.delete_edge(mid_edge)
    depths = {}
    for st in eng.machine.history[mark:]:
        if st.label:
            cur = depths.setdefault(st.label, 0)
            depths[st.label] = max(cur, st.depth)
    keep = ("getEdge", "tournament", "path_refresh", "col_sweep",
            "gamma_build", "gamma_argmin", "verify", "mwr_final")
    return {"n": n, **{k: depths.get(k, 0) for k in keep}}


def run_experiment(fast: bool = False) -> str:
    ns = NS_FAST if fast else NS_FULL
    seq = [seq_costs(n) for n in ns]
    cols = ["n", "J", "K", "split", "merge", "update_adj", "tree_delete(MWR)"]
    t1 = render_table(cols, [[r[c] for c in cols] for r in seq],
                      title="E7a: sequential per-operation costs (one long "
                            "list, default K)")
    verdicts = []
    for op_name, laws in [("split", ["sqrt(n)", "sqrt(n log n)", "n"]),
                          ("merge", ["sqrt(n)", "sqrt(n log n)", "n"]),
                          ("update_adj", ["log^2 n", "sqrt(n)",
                                          "sqrt(n log n)", "n"]),
                          ("tree_delete(MWR)", ["sqrt(n)", "sqrt(n log n)",
                                                "n"])]:
        law, res = classify_growth(ns, [r[op_name] for r in seq], laws)
        verdicts.append(f"{op_name}: best fit {law} (res {res:.2f})")
    par = [par_depths(n) for n in ([128, 256] if fast else [256, 512, 1024])]
    pcols = list(par[0].keys())
    t2 = render_table(pcols, [[r[c] for c in pcols] for r in par],
                      title="E7b: parallel kernel depths during one "
                            "tree-edge deletion (claims: O(log K)/O(log J))")
    growth = par[-1]["getEdge"] / max(par[0]["getEdge"], 1)
    verdicts.append(
        f"getEdge depth grows {growth:.2f}x over a {par[-1]['n'] // par[0]['n']}x "
        f"n range (log-like; sqrt would give "
        f"{(par[-1]['n'] / par[0]['n']) ** 0.5:.1f}x)")
    return banner("E7 lemma costs", t1 + "\n" + "\n".join(verdicts[:4])
                  + "\n\n" + t2 + "\n" + verdicts[4])


def test_e7_benchmark(benchmark):
    res = benchmark.pedantic(seq_costs, args=(256,), iterations=1, rounds=3)
    benchmark.extra_info.update(res)


def test_e7_split_cost_order():
    small = seq_costs(256)
    big = seq_costs(4096)
    # J + K is Theta(sqrt(n log n)): 16x n -> ~4-6x cost, far from 16x
    ratio = big["split"] / small["split"]
    assert 2.0 < ratio < 10.0, ratio


def test_e7_parallel_depths_logarithmic():
    small = par_depths(256)
    big = par_depths(1024)
    assert big["getEdge"] <= small["getEdge"] + 24
    assert big["col_sweep"] <= small["col_sweep"] + 24


if __name__ == "__main__":
    print(run_experiment())
