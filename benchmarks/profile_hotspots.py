#!/usr/bin/env python3
"""Profile the engines' hot paths (the optimize-after-measuring workflow).

Usage:
    python benchmarks/profile_hotspots.py [engine] [n] [steps]
                                          [--sort {cumulative,tottime}]
                                          [--limit N] [-o FILE]
                                          [--json FILE] [--cold]
                                          [--backend {scalar,columnar,compiled}]

engine: seq | par | par-fast | sparsify   (default seq, n=1024, steps=300)
(also accepted flag-style: ``--engine par-fast``, the CI spelling)

``par-fast`` profiles the parallel engine with ``audit="fast"`` so the
shape-keyed kernel bypass shows up in the profile instead of the lockstep
simulator; like ``sparsify`` it gets an untimed warm-up pass by default
(recording every kernel shape's ``TracePlan``, then rebuilding on the
same machine) so the profiled loop is the replay steady state --
``--cold`` attributes the recording pass instead.  Prints the top functions by the chosen sort key so optimization
work targets the real bottlenecks (for the sequential engine these are the
numpy vector pulls and the chunk rescans -- already the
algorithmically-charged costs).  ``-o FILE`` additionally dumps the raw
profile for ``snakeviz`` / ``pstats`` post-processing.

For engines that support the PR 3 engine arena (``sparsify``), the default
run first drives one *untimed* warm-up workload, releases the tree's node
engines back to the pool, and rebuilds -- the profiled loop then shows the
pooled steady state (no per-update ``DegreeReducer``/``ChunkSpace``
construction and zero runtime class creation).  ``--cold`` disables the
warm-up so cold-path construction costs can still be attributed.

``--json FILE`` additionally writes a machine-readable attribution record
(top-N rows by ``cumtime`` and ``tottime`` plus per-module ``tottime``
totals) so CI can archive hotspot attribution next to the BENCH file.

Unknown engine names are rejected *before* any profiling starts, and the
process exits non-zero so shell pipelines fail loudly.
"""

from __future__ import annotations

import argparse
import cProfile
import json
import os
import pstats
import sys
import time

ENGINES = ("seq", "par", "par-fast", "sparsify")

BACKENDS = ("scalar", "columnar", "compiled")

#: v3 (PR 9): adds ``time_split`` (tottime attributed to the native
#: ``_kernels`` extension vs pure python vs other builtins) and
#: ``charge_streams`` (C-side ChargeStream add/drain telemetry summed
#: over every attached counter), so CI artifacts show the plumbing
#: share moving across the C boundary instead of just shuffling rows.
JSON_SCHEMA = "hotspot-attribution/v3"


def build(engine: str, n: int, machine=None, backend: str = "scalar"):
    if engine == "seq":
        from repro.core.seq_msf import SparseDynamicMSF
        return SparseDynamicMSF(n, backend=backend), True
    if engine == "par":
        from repro.core.par import ParallelDynamicMSF
        return ParallelDynamicMSF(n, backend=backend), True
    if engine == "par-fast":
        from repro.core.par import ParallelDynamicMSF
        if machine is not None:
            # warm rebuild on a recycled machine: the replay/shape caches
            # survive reset_stats(), so the profiled loop below shows the
            # trace-replay steady state rather than the recording pass
            machine.reset_stats()
            return ParallelDynamicMSF(n, machine=machine,
                                      backend=backend), True
        return ParallelDynamicMSF(n, audit="fast", backend=backend), True
    if engine == "sparsify":
        from repro.core.sparsify import SparsifiedMSF
        return SparsifiedMSF(max(n, 2), backend=backend), False
    raise ValueError(f"unknown engine {engine!r}")


def workload(eng, core_style: bool, n: int, steps: int,
             adversarial: bool = False) -> None:
    """Drive ``steps`` churn updates -- or, for the parallel engines, the
    kernel-bound adversarial profile (one long path cut and reconnected
    per round, ~44 updates each at n=512), matching the bench harness's
    ``parallel-core*`` rows.  Churn at degree <= 3 stays on the short-list
    analytic paths and would never launch a kernel, so profiling the
    simulator (or its replay tier) requires the adversarial stream."""
    if adversarial:
        from repro.workloads import adversarial_cuts
        ops = adversarial_cuts(n, rounds=max(1, round(steps / 44)), seed=3)
    else:
        from repro.workloads import churn
        ops = churn(n, steps, seed=11, max_degree=3 if core_style else None)
    handles = {}
    idx = 0
    for op in ops:
        if op[0] == "ins":
            _t, u, v, w = op
            if core_style:
                handles[idx] = eng.insert_edge(u, v, w, eid=10_000 + idx)
            else:
                handles[idx] = eng.insert_edge(u, v, w)
        else:
            h = handles.pop(op[1])
            eng.delete_edge(h)
        idx += 1


def _module_of(filename: str) -> str:
    """Human attribution key: python module (or builtin bucket) of a row."""
    if filename.startswith("<") or filename == "~":
        return "<builtins>"
    return os.path.splitext(os.path.basename(filename))[0]


def attribution(stats: pstats.Stats, limit: int) -> dict:
    """Top-``limit`` rows by cumtime and tottime, plus per-module totals."""
    entries = []
    modules: dict[str, float] = {}
    for (filename, lineno, funcname), row in stats.stats.items():
        _cc, nc, tottime, cumtime, _callers = row
        module = _module_of(filename)
        entries.append({
            "module": module,
            "function": funcname,
            "file": filename,
            "line": lineno,
            "ncalls": nc,
            "tottime": round(tottime, 6),
            "cumtime": round(cumtime, 6),
        })
        modules[module] = modules.get(module, 0.0) + tottime
    by_cum = sorted(entries, key=lambda e: e["cumtime"], reverse=True)
    by_tot = sorted(entries, key=lambda e: e["tottime"], reverse=True)
    return {
        "top_cumtime": by_cum[:limit],
        "top_tottime": by_tot[:limit],
        "tottime_by_module": {
            m: round(t, 6)
            for m, t in sorted(modules.items(), key=lambda kv: -kv[1])
        },
    }


def time_split(stats: pstats.Stats) -> dict:
    """C-vs-Python tottime attribution.

    ``native_kernels`` is everything executed inside the compiled
    ``_kernels`` extension (pstats shows built-ins with their qualified
    name); ``python`` is bytecode in repro/stdlib frames; remaining
    built-ins (list.append, numpy ufuncs, ...) land in
    ``other_builtins``.  Shares are of the profiled total.
    """
    native = python = builtins = 0.0
    for (filename, _lineno, funcname), row in stats.stats.items():
        tottime = row[2]
        if "repro.core.compiled._kernels" in funcname:
            native += tottime
        elif filename.startswith("<") or filename == "~":
            builtins += tottime
        else:
            python += tottime
    total = native + python + builtins
    return {
        "native_kernels_s": round(native, 6),
        "python_s": round(python, 6),
        "other_builtins_s": round(builtins, 6),
        "native_share": round(native / total, 4) if total else 0.0,
        "python_share": round(python / total, 4) if total else 0.0,
    }


def charge_stream_stats(eng) -> dict | None:
    """Summed ChargeStream telemetry over every attached counter.

    Covers the bare-core engines (one stream on ``eng.ops``) and the
    sparsified facade (one per materialized node engine).  Returns None
    when no stream is attached (scalar/columnar backends), so the JSON
    key is present exactly when the compiled charge batching is live.
    """
    streams = []
    s = getattr(getattr(eng, "ops", None), "_stream", None)
    if s is not None:
        streams.append(s)
    nodes = getattr(eng, "nodes", None)
    if nodes:
        for node in nodes.values():
            if not getattr(node, "has_engine", False):
                continue
            core = getattr(node.engine, "core", None)
            s = getattr(getattr(core, "ops", None), "_stream", None)
            if s is not None:
                streams.append(s)
    if not streams:
        return None
    agg = {"streams": len(streams), "adds": 0, "drains": 0, "pending": 0}
    for s in streams:
        st = s.stats()
        agg["adds"] += st["adds"]
        agg["drains"] += st["drains"]
        agg["pending"] += st["pending"]
    agg["adds_per_drain"] = (round(agg["adds"] / agg["drains"], 2)
                             if agg["drains"] else None)
    return agg


def parse_args(argv=None) -> argparse.Namespace:
    parser = argparse.ArgumentParser(
        description="Profile an engine's hot paths under the churn workload.")
    parser.add_argument("engine", nargs="?", default="seq", choices=ENGINES,
                        help="engine to profile (default: seq)")
    parser.add_argument("--engine", dest="engine_flag", choices=ENGINES,
                        default=None, metavar="ENGINE",
                        help="flag-style alias for the positional engine "
                             "argument (CI invocations use --engine "
                             "par-fast --json ...); overrides the "
                             "positional when both are given")
    parser.add_argument("n", nargs="?", type=int, default=1024,
                        help="vertex-set size (default: 1024)")
    parser.add_argument("steps", nargs="?", type=int, default=300,
                        help="number of updates (default: 300)")
    parser.add_argument("--n", dest="n_flag", type=int, default=None,
                        help="flag-style alias for the positional n "
                             "(needed alongside --engine, which leaves "
                             "no positional engine slot to anchor n)")
    parser.add_argument("--steps", dest="steps_flag", type=int, default=None,
                        help="flag-style alias for the positional steps")
    parser.add_argument("--sort", choices=("cumulative", "tottime"),
                        default="cumulative",
                        help="pstats sort key (default: cumulative)")
    parser.add_argument("--limit", type=int, default=18, metavar="N",
                        help="how many rows to print (default: 18)")
    parser.add_argument("-o", "--output", metavar="FILE", default=None,
                        help="also dump the raw profile to FILE")
    parser.add_argument("--json", metavar="FILE", default=None,
                        help="write a machine-readable hotspot-attribution "
                             "record (top-N cumtime/tottime rows plus "
                             "per-module totals) to FILE")
    parser.add_argument("--cold", action="store_true",
                        help="skip the engine-arena warm-up pass and "
                             "profile the cold build path instead")
    parser.add_argument("--backend", choices=BACKENDS, default="scalar",
                        help="execution backend to profile (columnar "
                             "requires the repro[columnar] extra; compiled "
                             "requires the built native extension)")
    return parser.parse_args(argv)


def main(argv=None) -> int:
    args = parse_args(argv)
    if args.engine_flag is not None:
        args.engine = args.engine_flag
    if args.n_flag is not None:
        args.n = args.n_flag
    if args.steps_flag is not None:
        args.steps = args.steps_flag
    # Validate *everything* that can fail before the profiler starts, so a
    # typo never burns a multi-minute workload first.
    if args.n < 2:
        print(f"error: n must be >= 2, got {args.n}", file=sys.stderr)
        return 2
    if args.steps < 1:
        print(f"error: steps must be >= 1, got {args.steps}", file=sys.stderr)
        return 2
    try:
        eng, core_style = build(args.engine, args.n, backend=args.backend)
    except ValueError as exc:  # unreachable via argparse choices; belt+braces
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except ImportError as exc:  # BackendUnavailable without numpy
        print(f"error: {exc}", file=sys.stderr)
        return 2
    arena = "cold"
    adversarial = args.engine in ("par", "par-fast")
    if not args.cold and getattr(eng, "release", None) is not None:
        # Warm the engine arena: drive the workload once untimed, return the
        # node engines to the pool, rebuild.  The profiled loop below then
        # materializes its sparsification nodes from the free-list -- the
        # pooled steady state PR 3's tentpole targets -- instead of paying
        # cold DegreeReducer/ChunkSpace construction per node.
        workload(eng, core_style, args.n, args.steps)
        eng.release()
        eng, core_style = build(args.engine, args.n, backend=args.backend)
        arena = "warm"
    elif (not args.cold
          and getattr(getattr(eng, "machine", None), "audit", None) == "fast"):
        # Warm the replay tier (PR 4 parity with the bench harness): drive
        # the workload once untimed so every kernel shape records its
        # TracePlan, then rebuild on the *same* machine --
        # ``reset_stats()`` keeps the value-keyed shape caches, so the
        # profiled loop shows the all-warm replay steady state instead of
        # the recording pass.  ``--cold`` still attributes recording cost.
        workload(eng, core_style, args.n, args.steps,
                 adversarial=adversarial)
        eng, core_style = build(args.engine, args.n, machine=eng.machine,
                                backend=args.backend)
        arena = "warm"
    prof = cProfile.Profile()
    prof.enable()
    workload(eng, core_style, args.n, args.steps, adversarial=adversarial)
    prof.disable()
    stats = pstats.Stats(prof)
    stats.sort_stats(args.sort)
    print(f"== {args.engine} engine ({args.backend} backend), n={args.n}, "
          f"{args.steps} updates ({arena} arena): "
          f"top functions by {args.sort} ==")
    stats.print_stats(args.limit)
    if args.output:
        prof.dump_stats(args.output)
        print(f"raw profile written to {args.output}")
    if args.json:
        try:
            import numpy
            numpy_version = numpy.__version__
        except ImportError:
            numpy_version = None
        record = {
            "schema": JSON_SCHEMA,
            "created": time.strftime("%Y-%m-%dT%H:%M:%S"),
            "engine": args.engine,
            "backend": args.backend,
            "numpy": numpy_version,
            "n": args.n,
            "steps": args.steps,
            "workload": "adversarial" if adversarial else "churn",
            "arena": arena,
            "time_split": time_split(stats),
            **attribution(stats, args.limit),
        }
        streams = charge_stream_stats(eng)
        if streams is not None:
            record["charge_streams"] = streams
        cache_info = getattr(getattr(eng, "machine", None),
                             "cache_info", None)
        if cache_info is not None:
            # replay-tier telemetry (PR 4): lets CI artifacts show cache
            # pressure and warm hit rate next to the attribution rows
            record["pram_cache_info"] = cache_info()
        with open(args.json, "w") as fh:
            json.dump(record, fh, indent=2)
            fh.write("\n")
        print(f"hotspot attribution written to {args.json}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
