#!/usr/bin/env python3
"""Profile the engines' hot paths (the optimize-after-measuring workflow).

Usage:
    python benchmarks/profile_hotspots.py [engine] [n] [steps]
                                          [--sort {cumulative,tottime}]
                                          [--limit N] [-o FILE]

engine: seq | par | par-fast | sparsify   (default seq, n=1024, steps=300)

``par-fast`` profiles the parallel engine with ``audit="fast"`` so the
shape-keyed kernel bypass shows up in the profile instead of the lockstep
simulator.  Prints the top functions by the chosen sort key so optimization
work targets the real bottlenecks (for the sequential engine these are the
numpy vector pulls and the chunk rescans -- already the
algorithmically-charged costs).  ``-o FILE`` additionally dumps the raw
profile for ``snakeviz`` / ``pstats`` post-processing.

Unknown engine names are rejected *before* any profiling starts, and the
process exits non-zero so shell pipelines fail loudly.
"""

from __future__ import annotations

import argparse
import cProfile
import pstats
import sys

ENGINES = ("seq", "par", "par-fast", "sparsify")


def build(engine: str, n: int):
    if engine == "seq":
        from repro.core.seq_msf import SparseDynamicMSF
        return SparseDynamicMSF(n), True
    if engine == "par":
        from repro.core.par import ParallelDynamicMSF
        return ParallelDynamicMSF(n), True
    if engine == "par-fast":
        from repro.core.par import ParallelDynamicMSF
        return ParallelDynamicMSF(n, audit="fast"), True
    if engine == "sparsify":
        from repro.core.sparsify import SparsifiedMSF
        return SparsifiedMSF(max(n, 2)), False
    raise ValueError(f"unknown engine {engine!r}")


def workload(eng, core_style: bool, n: int, steps: int) -> None:
    from repro.workloads import churn
    handles = {}
    idx = 0
    for op in churn(n, steps, seed=11, max_degree=3 if core_style else None):
        if op[0] == "ins":
            _t, u, v, w = op
            if core_style:
                handles[idx] = eng.insert_edge(u, v, w, eid=10_000 + idx)
            else:
                handles[idx] = eng.insert_edge(u, v, w)
        else:
            h = handles.pop(op[1])
            eng.delete_edge(h)
        idx += 1


def parse_args(argv=None) -> argparse.Namespace:
    parser = argparse.ArgumentParser(
        description="Profile an engine's hot paths under the churn workload.")
    parser.add_argument("engine", nargs="?", default="seq", choices=ENGINES,
                        help="engine to profile (default: seq)")
    parser.add_argument("n", nargs="?", type=int, default=1024,
                        help="vertex-set size (default: 1024)")
    parser.add_argument("steps", nargs="?", type=int, default=300,
                        help="number of updates (default: 300)")
    parser.add_argument("--sort", choices=("cumulative", "tottime"),
                        default="cumulative",
                        help="pstats sort key (default: cumulative)")
    parser.add_argument("--limit", type=int, default=18, metavar="N",
                        help="how many rows to print (default: 18)")
    parser.add_argument("-o", "--output", metavar="FILE", default=None,
                        help="also dump the raw profile to FILE")
    return parser.parse_args(argv)


def main(argv=None) -> int:
    args = parse_args(argv)
    # Validate *everything* that can fail before the profiler starts, so a
    # typo never burns a multi-minute workload first.
    if args.n < 2:
        print(f"error: n must be >= 2, got {args.n}", file=sys.stderr)
        return 2
    if args.steps < 1:
        print(f"error: steps must be >= 1, got {args.steps}", file=sys.stderr)
        return 2
    try:
        eng, core_style = build(args.engine, args.n)
    except ValueError as exc:  # unreachable via argparse choices; belt+braces
        print(f"error: {exc}", file=sys.stderr)
        return 2
    prof = cProfile.Profile()
    prof.enable()
    workload(eng, core_style, args.n, args.steps)
    prof.disable()
    stats = pstats.Stats(prof)
    stats.sort_stats(args.sort)
    print(f"== {args.engine} engine, n={args.n}, {args.steps} updates: "
          f"top functions by {args.sort} ==")
    stats.print_stats(args.limit)
    if args.output:
        prof.dump_stats(args.output)
        print(f"raw profile written to {args.output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
