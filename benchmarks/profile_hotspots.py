#!/usr/bin/env python3
"""Profile the engines' hot paths (the optimize-after-measuring workflow).

Usage:
    python benchmarks/profile_hotspots.py [engine] [n] [steps]

engine: seq | par | sparsify   (default seq, n=1024, steps=300)

Prints the top cumulative-time functions so optimization work targets the
real bottlenecks (for the sequential engine these are the numpy vector
pulls and the chunk rescans -- already the algorithmically-charged costs).
"""

from __future__ import annotations

import cProfile
import pstats
import sys


def build(engine: str, n: int):
    if engine == "seq":
        from repro.core.seq_msf import SparseDynamicMSF
        return SparseDynamicMSF(n), True
    if engine == "par":
        from repro.core.par import ParallelDynamicMSF
        return ParallelDynamicMSF(n), True
    if engine == "sparsify":
        from repro.core.sparsify import SparsifiedMSF
        return SparsifiedMSF(max(n, 2)), False
    raise SystemExit(f"unknown engine {engine!r}")


def workload(eng, core_style: bool, n: int, steps: int) -> None:
    from repro.workloads import churn
    handles = {}
    idx = 0
    for op in churn(n, steps, seed=11, max_degree=3 if core_style else None):
        if op[0] == "ins":
            _t, u, v, w = op
            if core_style:
                handles[idx] = eng.insert_edge(u, v, w, eid=10_000 + idx)
            else:
                handles[idx] = eng.insert_edge(u, v, w)
        else:
            h = handles.pop(op[1])
            eng.delete_edge(h)
        idx += 1


def main() -> int:
    engine = sys.argv[1] if len(sys.argv) > 1 else "seq"
    n = int(sys.argv[2]) if len(sys.argv) > 2 else 1024
    steps = int(sys.argv[3]) if len(sys.argv) > 3 else 300
    eng, core_style = build(engine, n)
    prof = cProfile.Profile()
    prof.enable()
    workload(eng, core_style, n, steps)
    prof.disable()
    stats = pstats.Stats(prof)
    stats.sort_stats("cumulative")
    print(f"== {engine} engine, n={n}, {steps} updates: top functions ==")
    stats.print_stats(18)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
