#!/usr/bin/env python3
"""Benchmark-regression harness: measure every engine, gate future PRs.

Runs the E9 workload family across all engines and records
``engine -> {n, updates, updates_per_s, depth, work}`` into a
``BENCH_PR<k>.json`` at the repo root.  Two workload profiles exist:

* ``full``  -- the E9 sizes, with a *kernel-bound* adversarial workload for
  the parallel engine (random churn at n=1024 barely launches kernels, so
  it cannot detect simulator regressions; ``adversarial_cuts`` keeps one
  large Euler tour and forces full-width MWR searches every round, which is
  exactly the hot path ``Machine.run`` optimizations target);
* ``quick`` -- scaled-down versions of the same workloads for CI smoke.

PR 2 adds the serving layer (``repro.serve``) and two engines:
``facade-batched`` drives the deferred-consistency ``BatchedMSF`` over a
read/write ``query_mix`` stream (batch coalescing + epoch-snapshot
reads), and ``query-path`` measures a pure read burst against a
prefilled ``BatchedMSF`` (union-find snapshot + O(1) incremental
weight).  Both are gated like every other engine; ``bench_serve.py``
holds the side-by-side before/after comparison.

PR 3 adds the ``structures-2-3-tree`` row: a substrate micro-bench that
exercises the 2-3 tree directly (insert/delete/split+join plus leaf
rewrites through ``refresh_upward_changed``) so regressions in the
balanced-tree backbone are gated even when the engine rows hide them
behind engine-level constants.  It also releases pooled engines between
the best-of-N timing runs, so runs 2..N measure the warm engine-arena
path (``repro.core.sparsify.EnginePool``) -- the steady state a serving
deployment actually sits in -- while run 1 still covers the cold build.

PR 5 adds the ``resilience-overhead`` section: a paired A/B measurement
on the ``facade-sparsified`` and ``parallel-core-fast`` rows asserting
that the deployed resilience configuration -- fault-injection sites
compiled into the hot paths but *disarmed*, plus cheap-tier self-checks
every :data:`RES_CHECK_EVERY` ops -- costs less than 2% over the plain
replay.  The bar is enforced in both measure and ``--check`` modes (it
is a property of the current code, not of any committed baseline).

PR 6 adds the ``cluster-sharded`` section: the multi-process serving
cluster (``repro.serve.ClusterMSF``) replays a ``worker_mix`` stream at
pool sizes {1, 2, 4} with real worker processes.  Two absolute gates,
enforced in both measure and ``--check`` modes like the resilience bar:
every pool size must be *bit-identical* to the serial ``BatchedMSF``
path (forests, read results, ``msf_weight``), and on the full profile
the best pool >= 2 must beat pool 1 on wall clock (the measured
multiplier is recorded).  Results now also carry a ``host`` block
(CPU count, python version, platform) because the cluster multiplier is
host-dependent: on a single-core runner it measures sharding's work
*reduction* plus coordinator/worker overlap, not parallelism.

PR 7 adds the columnar execution backend: a ``facade-columnar`` row
(the sparsified facade with ``backend="columnar"``, skipped with an
attributable reason when numpy is absent) and a ``columnar`` section
holding a paired scalar/columnar replay of the gated rows.  Two
absolute gates, enforced in both modes: the pair must be
*bit-identical* (forests, ``msf_weight``, facade fingerprints, PRAM
``depth``/``work``), and the same-run wall-clock ratio must stay above
:data:`COLUMNAR_RATIO_FLOOR` -- the ratio is measured in-process
because the backends' relative speed at the gated sizes (~1x; see
EXPERIMENTS.md E9) is far inside committed-baseline cross-host noise.

PR 8 adds the compiled execution backend: a ``facade-compiled`` row
(the sparsified facade with ``backend="compiled"``, skipped with an
attributable reason when the native extension is not built), the
``seq-core-wide`` row -- the PR 7 wide-Jcap probe (n=2048, K=16,
Jcap ~ 640) promoted from an EXPERIMENTS.md footnote to a gated row,
replayed under ``adversarial_cuts`` because tree-edge deletions are
what drive the column sweeps and MWR scans the native kernels cover --
and a ``compiled`` section holding a paired scalar/compiled replay of
the gated rows.  Gates (both modes): bit-identity everywhere, the
:data:`COMPILED_RATIO_FLOOR` on the small rows, and a hard
:data:`COMPILED_WIDE_MIN` (2x) same-run speedup on ``seq-core-wide``.

PR 9 moves the compiled tier's *structural plumbing* (charge batching,
splay/transition walks, sparse-aware mirror scans) behind the native
facade and re-centres the churn gating on the regime where that pays:
a new ``seq-core-wide-churn`` row (n=2048, K=8, Jcap ~ 512, dense
churn) is replayed in the compiled section under a hard
:data:`COMPILED_CHURN_MIN` (1.5x) same-run bar on the full profile.
The narrow churn rows (``facade-sparsified``, ``parallel-core-fast``)
keep the bit-identity gate plus the catastrophe floor: their residual
time is facade/PRAM-simulator Python *above* the backend seam, so no
compiled-tier work can move them (measured ~1.0-1.3x; EXPERIMENTS.md
E9).  The ``resilience_overhead`` section also switches to a
median-of-ratios estimator over more A/B pairs -- each pair shares one
host state, so per-pair ratios cancel slow drift and the median rejects
steal bursts that the old min-of-each-arm estimator read as +/-8%
phantom overhead on 1-CPU hosts.

``--check`` re-measures and compares against the most recent committed
``BENCH_*.json``: ``updates_per_s`` may not drop more than ``--tolerance``
(default 15%), and the model quantities ``depth``/``work`` -- which are
deterministic -- may not drift more than the same tolerance in either
direction.  Sections a baseline predates (e.g. ``cluster`` vs a pre-PR6
file) are simply not compared.  Exit status is non-zero on any
regression, so CI can gate PRs.

Usage:
    python benchmarks/bench_regression.py                  # measure + write
    python benchmarks/bench_regression.py --quick          # quick profile only
    python benchmarks/bench_regression.py --check          # compare, no write
    python benchmarks/bench_regression.py --check --quick  # CI smoke gate
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import re
import statistics
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))

SCHEMA = "bench-regression/v6"


def host_meta() -> dict:
    """The machine facts a reader needs to interpret the numbers --
    especially the cluster speedup, which is meaningless without the
    CPU count it was measured on.  v3 adds the numpy version (None when
    the ``repro[columnar]`` extra is absent), since the columnar rows'
    wall clock depends on it."""
    try:
        import numpy
        numpy_version = numpy.__version__
    except ImportError:
        numpy_version = None
    return {
        "cpu_count": os.cpu_count(),
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": platform.platform(),
        "machine": platform.machine(),
        "numpy": numpy_version,
    }


def _describe_host(meta: dict, label: str = "host") -> str:
    return (f"{label}: {meta.get('cpu_count')} CPU(s), "
            f"{meta.get('implementation', 'Python')} "
            f"{meta.get('python')}, {meta.get('platform')}")

# ---------------------------------------------------------------------------
# workload definitions (the E9 family; see module docstring for rationale)
# ---------------------------------------------------------------------------

FULL = {
    "seq-core": dict(kind="seq-core", n=1024, workload="churn", steps=150),
    "parallel-core": dict(kind="par-core", n=512, workload="adversarial",
                          rounds=15),
    "parallel-core-fast": dict(kind="par-core", n=512, workload="adversarial",
                               rounds=15, audit="fast"),
    "facade-sequential": dict(kind="facade", n=1024, workload="churn",
                              steps=150),
    "facade-sparsified": dict(kind="facade-sparsified", n=256,
                              workload="churn", steps=60),
    "facade-columnar": dict(kind="facade-sparsified", n=256,
                            workload="churn", steps=60, backend="columnar"),
    "facade-compiled": dict(kind="facade-sparsified", n=256,
                            workload="churn", steps=60, backend="compiled"),
    "seq-core-wide": dict(kind="seq-core", n=2048, K=16,
                          workload="adversarial", rounds=1),
    "seq-core-wide-churn": dict(kind="seq-core", n=2048, K=8,
                                workload="churn", steps=800, max_degree=8),
    "facade-batched": dict(kind="facade-batched", n=256,
                           workload="query-mix", steps=1200,
                           read_ratio=0.8, batch=64),
    "query-path": dict(kind="query-path", n=256, workload="query-burst",
                       prefill=240, queries=5000),
    "structures-2-3-tree": dict(kind="structures", n=2048,
                                workload="tt-ops", steps=8000),
}

QUICK = {
    "seq-core": dict(kind="seq-core", n=256, workload="churn", steps=80),
    "parallel-core": dict(kind="par-core", n=128, workload="adversarial",
                          rounds=4),
    "parallel-core-fast": dict(kind="par-core", n=128, workload="adversarial",
                               rounds=4, audit="fast"),
    "facade-sequential": dict(kind="facade", n=256, workload="churn",
                              steps=80),
    "facade-sparsified": dict(kind="facade-sparsified", n=128,
                              workload="churn", steps=40),
    "facade-columnar": dict(kind="facade-sparsified", n=128,
                            workload="churn", steps=40, backend="columnar"),
    "facade-compiled": dict(kind="facade-sparsified", n=128,
                            workload="churn", steps=40, backend="compiled"),
    "seq-core-wide": dict(kind="seq-core", n=512, K=16,
                          workload="adversarial", rounds=1),
    "seq-core-wide-churn": dict(kind="seq-core", n=512, K=8,
                                workload="churn", steps=300, max_degree=8),
    "facade-batched": dict(kind="facade-batched", n=128,
                           workload="query-mix", steps=400,
                           read_ratio=0.8, batch=64),
    "query-path": dict(kind="query-path", n=128, workload="query-burst",
                       prefill=120, queries=1500),
    "structures-2-3-tree": dict(kind="structures", n=512,
                                workload="tt-ops", steps=2500),
}

# The CI smoke gate must always exercise the fast-path machine: it is the
# engine whose regressions the trace-replay caches could otherwise mask.
assert "parallel-core-fast" in QUICK, \
    "the quick profile must gate the audit='fast' engine"
assert "parallel-core-fast" in FULL, \
    "the full profile must gate the audit='fast' engine"


def _ops_for(spec: dict) -> list:
    import random

    from repro.workloads import adversarial_cuts, churn, query_mix
    if spec["workload"] == "adversarial":
        return list(adversarial_cuts(spec["n"], spec["rounds"], seed=3))
    if spec["workload"] == "query-mix":
        return list(query_mix(spec["n"], spec["steps"],
                              read_ratio=spec["read_ratio"], seed=5))
    if spec["workload"] == "query-burst":
        rng = random.Random(5)
        ops = []
        for i in range(spec["queries"]):
            if i % 2 == 0:
                ops.append(("conn", *rng.sample(range(spec["n"]), 2)))
            else:
                ops.append(("weight",))
        return ops
    if spec["workload"] == "tt-ops":
        # substrate micro-bench stream: raw randoms, resolved against the
        # live leaf set at replay time (keeps the stream deterministic
        # while the tree shape evolves)
        rng = random.Random(7)
        ops = []
        for _ in range(spec["steps"]):
            r = rng.random()
            raw = rng.randrange(1 << 30)
            if r < 0.25:
                ops.append(("tt-ins", raw))
            elif r < 0.45:
                ops.append(("tt-del", raw))
            elif r < 0.85:
                ops.append(("tt-set", raw, rng.randrange(1 << 16)))
            else:
                ops.append(("tt-splitjoin", raw))
        return ops
    max_degree = spec.get(
        "max_degree",
        3 if spec["kind"] in ("seq-core", "par-core") else None)
    return list(churn(spec["n"], spec["steps"], seed=5,
                      max_degree=max_degree))


class _TTDriver:
    """Drives the 2-3-tree substrate for the ``structures-2-3-tree`` row.

    Leaves carry int aggregates with a sum pull; the op stream exercises
    ``insert_after`` / ``delete_leaf`` / ``split_after`` + ``join`` and
    in-place leaf rewrites flushed through ``refresh_upward_changed`` --
    the exact call mix the LSDS and every ``BT_c`` put on the substrate.
    """

    def __init__(self, n: int) -> None:
        from repro.structures import two_three_tree as tt
        self.tt = tt
        self.leaves = [tt.leaf(i, i) for i in range(n)]
        root = self.leaves[0]
        for lf in self.leaves[1:]:
            root = tt.insert_after(tt.last_leaf(root), lf, self._pull)
        self.root = root
        self._next = n

    @staticmethod
    def _pull(node) -> None:
        node.agg = sum(k.agg for k in node.kids)

    @staticmethod
    def _pull_changed(node) -> bool:
        new = sum(k.agg for k in node.kids)
        if new == node.agg:
            return False
        node.agg = new
        return True

    def run_ops(self, ops) -> None:
        tt, leaves = self.tt, self.leaves
        pull, pull_changed = self._pull, self._pull_changed
        for op in ops:
            tag = op[0]
            if tag == "tt-set":
                lf = leaves[op[1] % len(leaves)]
                lf.agg = op[2]
                tt.refresh_upward_changed(lf, pull_changed)
            elif tag == "tt-ins":
                after = leaves[op[1] % len(leaves)]
                lf = tt.leaf(self._next, self._next)
                self._next += 1
                self.root = tt.insert_after(after, lf, pull)
                leaves.append(lf)
            elif tag == "tt-del":
                if len(leaves) <= 2:
                    continue
                lf = leaves.pop(op[1] % len(leaves))
                self.root = tt.delete_leaf(lf, pull)
            else:  # tt-splitjoin
                lf = leaves[op[1] % len(leaves)]
                left, right = tt.split_after(lf, pull)
                self.root = tt.join(left, right, pull)


def _arena_state() -> str:
    """One-line engine-arena summary for skip/diagnostic messages."""
    try:
        from repro.core.sparsify import default_pool
        free = sum(1 for _ in default_pool.free_engines())
        return f"arena: {free} pooled engine(s)"
    except Exception:  # noqa: BLE001 - diagnostics must never raise
        return "arena: unavailable"


def _build(spec: dict, machine=None):
    """Returns (engine, core_style, machine_or_None).

    On skip, returns ``(None, reason, None)`` with a human-readable reason
    -- real constructor failures are *not* swallowed (a ``TypeError``
    raised by an engine bug used to be silently reported as "engine lacks
    audit support"; the audit-ladder probe is now a signature check).

    ``machine`` (par-core only) recycles the PRAM machine of a previous
    run: its measurement state is arena-reset while the value-keyed
    shape/trace caches survive -- the documented
    ``ParallelDynamicMSF._zero_measurements`` contract, under which a
    recycled engine measures bit-identically to a fresh one.  Best-of-N
    runs 2..N therefore cover the warm trace-replay steady state, exactly
    as the ``EnginePool`` recycling (PR 3) does for sparsification nodes.
    """
    kind, n = spec["kind"], spec["n"]
    backend = spec.get("backend", "scalar")
    if backend == "columnar":
        try:
            import numpy  # noqa: F401
        except ImportError:
            # skip reason names the backend and the arena state, so a CI
            # log reading "SKIPPED" is attributable at a glance (an
            # earlier version printed a bare reason, indistinguishable
            # from the audit-ladder skip)
            return None, (f"backend={backend} needs numpy (repro[columnar] "
                          f"extra not installed; {_arena_state()})"), None
    if backend == "compiled":
        from repro.core import compiled as _compiled
        if not _compiled.HAVE_COMPILED:
            return None, (f"backend={backend} needs the native extension "
                          f"(python -m repro.core.compiled.build; "
                          f"{_arena_state()})"), None
    if kind == "structures":
        return _TTDriver(n), False, None
    if kind == "seq-core":
        from repro.core.seq_msf import SparseDynamicMSF
        eng = SparseDynamicMSF(n, K=spec.get("K"), backend=backend)
        return eng, True, None
    if kind == "par-core":
        import inspect

        from repro.core.par import ParallelDynamicMSF
        audit = spec.get("audit")
        if audit is None:
            eng = ParallelDynamicMSF(n, backend=backend)
        elif "audit" not in inspect.signature(
                ParallelDynamicMSF.__init__).parameters:
            return None, "engine predates the audit ladder (no 'audit' " \
                         "constructor parameter)", None
        elif machine is not None:
            machine.reset_stats()
            eng = ParallelDynamicMSF(n, machine=machine, backend=backend)
        else:
            eng = ParallelDynamicMSF(n, audit=audit, backend=backend)
        return eng, True, eng.machine
    if kind == "facade":
        from repro import DynamicMSF
        eng = DynamicMSF(n, max_edges=4 * n, backend=backend)
        return eng, False, None
    if kind == "facade-sparsified":
        from repro import DynamicMSF
        eng = DynamicMSF(n, sparsify=True, backend=backend)
        return eng, False, None
    if kind == "facade-batched":
        from repro import BatchedMSF
        eng = BatchedMSF(n, consistency="deferred",
                         batch_size=spec["batch"], pool_size=1)
        return eng, False, None
    if kind == "query-path":
        from repro import BatchedMSF
        from repro.workloads import churn, drive
        eng = BatchedMSF(n)
        drive(eng, churn(n, spec["prefill"], seed=5))
        eng.flush()
        eng.connected(0, n - 1)  # warm the epoch snapshot
        return eng, False, None
    raise ValueError(f"unknown engine kind {kind!r}")


def _replay(engine, ops, core_style: bool, *, check_every: int = 0) -> None:
    """Drive one op stream; ``check_every > 0`` interleaves cheap
    self-checks every that many ops (the resilience-overhead B arm)."""
    run_ops = getattr(engine, "run_ops", None)
    if run_ops is not None:  # substrate drivers interpret their own stream
        run_ops(ops)
        return
    handles = {}
    idx = 0
    for op in ops:
        tag = op[0]
        if tag == "ins":
            _t, u, v, w = op
            if core_style:
                handles[idx] = engine.insert_edge(u, v, w, eid=10_000 + idx)
            else:
                handles[idx] = engine.insert_edge(u, v, w)
        elif tag == "del":
            engine.delete_edge(handles.pop(op[1]))
        elif tag == "conn":
            engine.connected(op[1], op[2])
        elif tag == "weight":
            engine.msf_weight()
        idx += 1
        if check_every and idx % check_every == 0:
            _cheap_check(engine)
    flush = getattr(engine, "flush", None)
    if flush is not None:  # batched fronts: include the final batch apply
        flush()
    if check_every:
        _cheap_check(engine)


def _cheap_check(engine) -> None:
    """One cheap-tier self-audit; a dirty engine voids the measurement."""
    if hasattr(engine, "self_check"):
        findings = engine.self_check("cheap")
    else:  # bare core engines (par-core rows)
        from repro.resilience import checks
        findings = checks.check_engine(engine, "cheap")
    if findings:
        raise RuntimeError(
            f"cheap self-check found problems mid-benchmark: "
            f"{[str(f) for f in findings[:3]]}")


def _release(engine) -> None:
    """Return a tree's node engines to the arena, if the engine supports it.

    Called *outside* the timed window after every run: the next ``_build``
    then materializes its sparsification nodes from the warm
    ``EnginePool`` free-list, so runs 2..N measure the pooled steady
    state.  Pooling is measurement-neutral by construction (see
    ``tests/core/test_arena.py``), so the model quantities recorded from
    the first (cold) build still describe every run.
    """
    fn = getattr(engine, "release", None)
    if fn is not None:
        fn()


def measure_profile(specs: dict, engines=None) -> dict:
    rows: dict[str, dict] = {}
    for name, spec in specs.items():
        if engines and name not in engines:
            continue
        ops = _ops_for(spec)
        built = _build(spec)
        if built[0] is None:
            print(f"  {name:<22} SKIPPED ({built[1]})")
            continue
        engine, core_style, machine = built
        # best-of-N timing: sub-10ms engines are far too noisy for a 15%
        # gate on a single sample, so repeat (on a fresh engine each time,
        # construction excluded) until >=0.5s total or 5 runs, and keep the
        # fastest -- the standard noise floor for micro-timings.  Slow
        # engines (the simulator) exceed the floor on run one and pay
        # nothing extra.  Model quantities come from the first build.
        t0 = time.perf_counter()
        _replay(engine, ops, core_style)
        dt = time.perf_counter() - t0
        _release(engine)
        spent, runs = dt, 1
        # fast-audit rows gate the trace-replay *steady state*: run 1 is
        # the recording pass (every shape key misses and compiles a plan),
        # so always take at least two recycled-machine runs on top of it,
        # even when the cold run alone exceeds the 0.5s noise floor
        floor_runs = 3 if spec.get("audit") == "fast" else 1
        while (spent < 0.5 or runs < floor_runs) and runs < 5:
            # par-core: recycle the machine so runs 2..N measure the warm
            # trace-replay tier (see _build); other engines rebuild cold
            # and rely on _release's pooled arenas for their warm state
            fresh = _build(spec, machine=machine)[0]
            t0 = time.perf_counter()
            _replay(fresh, ops, core_style)
            d = time.perf_counter() - t0
            _release(fresh)
            spent += d
            runs += 1
            if d < dt:
                dt = d
        rows[name] = {
            "n": spec["n"],
            "workload": spec["workload"],
            "backend": spec.get("backend", "scalar"),
            "updates": len(ops),
            "seconds": round(dt, 4),
            "updates_per_s": round(len(ops) / dt, 2),
            "depth": machine.total.depth if machine is not None else None,
            "work": machine.total.work if machine is not None else None,
        }
        print(f"  {name:<22} n={spec['n']:<5} {len(ops):>4} updates  "
              f"{dt:8.3f}s  {len(ops) / dt:10.1f} upd/s")
    return rows


# ---------------------------------------------------------------------------
# resilience overhead (PR 5)
# ---------------------------------------------------------------------------

#: rows whose hot paths carry compiled-in (but disarmed) fault-injection
#: sites; the overhead row measures them with cheap self-checks on top
RESILIENCE_ROWS = ("facade-sparsified", "parallel-core-fast")
#: cheap self-check cadence in the checked arm (ops between audits); one
#: final check always runs after the stream
RES_CHECK_EVERY = 32
#: allowed relative cost of disarmed sites + cheap checks (the PR 5 bar)
RES_OVERHEAD_TOL = 0.02
#: minimum A/B pairs for the median-of-ratios diagnostic: the median of
#: fewer than 5 samples still lets one steal burst through on a 1-CPU
#: host (the +/-8% swings the min-based estimator suffered)
RES_MIN_PAIRS = 5
#: direct timings of the warm cheap self-check for the gated component
#: estimate; each call is ~7-10 us, so the whole sample costs ~3 ms
RES_CHECK_SAMPLES = 300


def measure_resilience_overhead(specs: dict, engines=None) -> dict:
    """Paired A/B cost of the resilience layer on the two gated rows.

    Arm A replays the row's exact workload on a fresh engine -- with the
    fault-injection registry *disarmed*, which is the deployed
    configuration: every site compiled into the hot paths still executes
    its ``if _faults.armed`` guard.  Arm B replays the identical stream
    plus a cheap-tier self-check every :data:`RES_CHECK_EVERY` ops (and
    once at the end).  Both arms run after a warm-up pass and recycle
    the PRAM machine / engine arena exactly as ``measure_profile`` does,
    so they compare warm steady states.

    The *gated* statistic is a component estimate (PR 9):

        overhead = checks_per_stream * median(warm check cost) / plain

    where the check cost is timed directly (:data:`RES_CHECK_SAMPLES`
    calls on the warm post-replay engine; median ~7 us on the facade
    row) and ``plain`` is the best plain-arm replay.  Every factor is a
    tight median or best-of, so the estimate is stable run to run.  The
    end-to-end A/B difference, by contrast, is *unmeasurable* at a 2%
    scale on a shared 1-CPU host: the timing windows are ~20-900 ms and
    a single preemption costs more than the entire true overhead
    (~0.1%), so even a median of alternating-order back-to-back pairs
    was observed swinging -8%..+22% across runs -- the bar tripped on
    noise at PR 7, PR 8 and twice while building PR 9 (ROADMAP item 2).
    The paired A/B median is still recorded (``paired_ab_pct``) as a
    drift diagnostic, but it carries no gate.

    What the component estimate deliberately excludes -- interleaving
    effects of the checks on the hot loop (cache eviction, allocator
    churn) and the cost of the compiled-in *disarmed* fault-site guards
    -- is gated end-to-end by the ordinary ``facade-sparsified`` /
    ``parallel-core-fast`` throughput rows against the committed
    ``BENCH_PR4.json`` (recorded before the sites existed), where a 15%+
    tolerance matches what wall clock can actually resolve.
    """
    from repro.resilience import faults
    if faults.armed:  # pragma: no cover - defensive; nothing arms here
        raise RuntimeError("fault registry must be disarmed for the "
                           "overhead measurement")
    rows: dict[str, dict] = {}
    for name in RESILIENCE_ROWS:
        spec = specs.get(name)
        if spec is None or (engines and name not in engines):
            continue
        ops = _ops_for(spec)
        # warm-up: populate the trace-replay caches / engine arena so both
        # arms measure the steady state (fast-audit run 1 is the recording
        # pass and would swamp a 2% comparison)
        engine, core_style, machine = _build(spec)
        _replay(engine, ops, core_style)
        _release(engine)
        plain = checked = None
        ratios: list[float] = []
        spent, pairs = 0.0, 0

        def _one(check_every: int) -> float:
            fresh = _build(spec, machine=machine)[0]
            t0 = time.perf_counter()
            _replay(fresh, ops, core_style, check_every=check_every)
            d = time.perf_counter() - t0
            _release(fresh)
            return d

        def _pair() -> None:
            nonlocal plain, checked, spent, pairs
            if pairs % 2:  # alternate arm order (see docstring)
                d_checked = _one(RES_CHECK_EVERY)
                d_plain = _one(0)
            else:
                d_plain = _one(0)
                d_checked = _one(RES_CHECK_EVERY)
            plain = d_plain if plain is None else min(plain, d_plain)
            checked = (d_checked if checked is None
                       else min(checked, d_checked))
            ratios.append(d_checked / d_plain)
            spent += d_plain + d_checked
            pairs += 1

        while (spent < 1.6 or pairs < RES_MIN_PAIRS) and pairs < 12:
            _pair()
        paired_ab = statistics.median(ratios) - 1.0
        # gated component estimate: time the warm cheap check directly on
        # a post-replay engine (the same state the checked arm audits)
        fresh = _build(spec, machine=machine)[0]
        _replay(fresh, ops, core_style)
        samples: list[float] = []
        for _ in range(RES_CHECK_SAMPLES):
            t0 = time.perf_counter()
            _cheap_check(fresh)
            samples.append(time.perf_counter() - t0)
        _release(fresh)
        check_cost = statistics.median(samples)
        n_checks = len(ops) // RES_CHECK_EVERY + 1
        overhead = n_checks * check_cost / plain
        rows[name] = {
            "n": spec["n"],
            "workload": spec["workload"],
            "updates": len(ops),
            "check_every": RES_CHECK_EVERY,
            "checks": n_checks,
            "check_cost_us": round(1e6 * check_cost, 2),
            "pairs": pairs,
            "estimator": "component-cost (paired A/B diagnostic only)",
            "plain_updates_per_s": round(len(ops) / plain, 2),
            "checked_updates_per_s": round(len(ops) / checked, 2),
            "overhead_pct": round(100.0 * overhead, 3),
            "paired_ab_pct": round(100.0 * paired_ab, 3),
        }
        print(f"  {name:<22} n={spec['n']:<5} plain "
              f"{len(ops) / plain:10.1f} upd/s  check "
              f"{1e6 * check_cost:6.1f} us x{n_checks:<3} "
              f"overhead {100.0 * overhead:+6.2f}%  "
              f"(paired A/B {100.0 * paired_ab:+6.2f}%)")
    return rows


def overhead_failures(rows: dict, tolerance: float = RES_OVERHEAD_TOL
                      ) -> list[str]:
    """Gate messages for :func:`measure_resilience_overhead` output."""
    return [
        f"{name}: resilience overhead {row['overhead_pct']:.2f}% > "
        f"{tolerance:.0%} (disarmed sites + cheap self-checks every "
        f"{row['check_every']} ops must stay near-free)"
        for name, row in rows.items()
        if row["overhead_pct"] > 100.0 * tolerance
    ]


# ---------------------------------------------------------------------------
# sharded serving cluster (PR 6)
# ---------------------------------------------------------------------------

#: worker_mix serving configuration replayed at every pool size; the
#: full profile is the acceptance configuration (n=1024), quick is the
#: CI-sized shadow that keeps the identity gate hot without the >1x
#: speedup requirement (too noisy at smoke sizes).
CLUSTER_FULL = dict(n=1024, steps=2000, batch=256, read_ratio=0.2,
                    cross_fraction=0.05, shards=4, seed=17,
                    pools=(1, 2, 4), gate_speedup=True)
CLUSTER_QUICK = dict(n=256, steps=600, batch=128, read_ratio=0.3,
                     cross_fraction=0.05, shards=4, seed=17,
                     pools=(1, 2), gate_speedup=False)


def measure_cluster(spec: dict) -> dict:
    """Replay one ``worker_mix`` stream serially and at every pool size.

    Every cluster run uses real worker processes (``processes=True``)
    and deferred consistency -- the deployment configuration.  The row
    records per-pool wall clock plus the speedup of each pool over
    pool 1, and carries the bit-identity verdict: read-result stream,
    final forest and ``msf_weight`` (bitwise, not approx) must all match
    the serial ``BatchedMSF`` replay of the same ops.
    """
    from repro.serve import BatchedMSF, ClusterMSF
    from repro.workloads import OpStream, drive, worker_mix
    ops = list(worker_mix(spec["n"], spec["steps"], shards=spec["shards"],
                          cross_fraction=spec["cross_fraction"],
                          read_ratio=spec["read_ratio"], seed=spec["seed"]))
    ref = BatchedMSF(spec["n"], sparsify=True, pool_size=1,
                     batch_size=spec["batch"], consistency="deferred")
    sref = drive(ref, ops)
    ref.flush()
    ref_ids, ref_weight = ref.msf_ids(), ref.msf_weight()

    def one_run(pool: int) -> tuple[float, bool]:
        c = ClusterMSF(spec["n"], pool_size=pool, processes=True,
                       batch_size=spec["batch"], consistency="deferred")
        try:
            s = OpStream(c)
            t0 = time.perf_counter()
            for op in ops:
                s.apply(op)
            c.flush()
            dt = time.perf_counter() - t0
            match = (s.results == sref.results
                     and c.msf_ids() == ref_ids
                     and c.msf_weight() == ref_weight)
        finally:
            c.close()
        return dt, match

    pools: dict[str, dict] = {}
    identical = True
    for pool in spec["pools"]:
        # best-of-N, same rationale as measure_profile: a single sample
        # on a shared/virtualized host can eat a multi-second steal
        # burst, and the speedup gate compares two such samples.  The
        # minimum over a few fresh clusters is the stable statistic;
        # bit-identity is asserted on *every* run, not just the kept one.
        dt, match = one_run(pool)
        runs = 1
        while runs < 3:
            d, m = one_run(pool)
            match = match and m
            runs += 1
            if d < dt:
                dt = d
        identical = identical and match
        pools[f"pool{pool}"] = {
            "seconds": round(dt, 4),
            "ops_per_s": round(len(ops) / dt, 2),
            "runs": runs,
            "bit_identical": match,
        }
        print(f"  pool={pool}: n={spec['n']:<5} {len(ops):>5} ops  "
              f"{dt:8.3f}s  {len(ops) / dt:10.1f} ops/s  "
              f"(best of {runs})  identical={match}")
    base = pools[f"pool{spec['pools'][0]}"]["seconds"]
    speedups = {f"x{p}": round(base / pools[f'pool{p}']['seconds'], 3)
                for p in spec["pools"] if p > 1}
    best = max(speedups.values()) if speedups else None
    if speedups:
        print(f"  speedup vs pool1: {speedups}  "
              f"(best {best}x on {os.cpu_count()} CPU(s))")
    return {
        "n": spec["n"],
        "workload": "worker-mix",
        "shards": spec["shards"],
        "cross_fraction": spec["cross_fraction"],
        "read_ratio": spec["read_ratio"],
        "updates": sum(1 for op in ops if op[0] in ("ins", "del")),
        "ops": len(ops),
        "pools": pools,
        "speedups": speedups,
        "best_speedup": best,
        "bit_identical": identical,
        "gate_speedup": spec["gate_speedup"],
    }


def cluster_failures(row: dict) -> list[str]:
    """Absolute gates for the cluster row (both modes, like the
    resilience bar): bit-identity always; >1x speedup when gated."""
    failures: list[str] = []
    if not row["bit_identical"]:
        bad = [k for k, v in row["pools"].items() if not v["bit_identical"]]
        failures.append(
            f"cluster-sharded: {', '.join(bad)} diverged from the serial "
            f"BatchedMSF path (forests/read-results/msf_weight must be "
            f"bit-identical)")
    if row["gate_speedup"] and (row["best_speedup"] is None
                                or row["best_speedup"] <= 1.0):
        failures.append(
            f"cluster-sharded: best pool>=2 speedup "
            f"{row['best_speedup']}x is not >1x over pool 1 "
            f"(n={row['n']}, {row['ops']} ops)")
    return failures


# ---------------------------------------------------------------------------
# columnar backend equivalence (PR 7)
# ---------------------------------------------------------------------------

#: rows replayed under both backends; the scalar/columnar pair must be
#: bit-identical (forests, weight, PRAM depth/work) and the columnar arm
#: must stay above the wall-clock ratio floor
COLUMNAR_ROWS = ("facade-sparsified", "parallel-core-fast")
#: columnar/scalar updates-per-second floor.  The contract of the
#: columnar backend is *bit-identity first*: at the gated sizes (n<=512,
#: J ~ 2n/K chunks) the vector widths are tens of lanes, where measured
#: speedups range from ~0.9x to ~1.2x depending on host and shape -- see
#: EXPERIMENTS.md E9.  The floor catches a catastrophic slowdown (an
#: accidental O(J) -> O(J^2) mirror resync, say) without gating host
#: noise; larger-J shapes are where the vectorized kernels pay off.
COLUMNAR_RATIO_FLOOR = 0.5


def _equiv_signature(engine, core_style: bool) -> tuple:
    """Backend-independent state signature for the equivalence gate."""
    if core_style:  # bare core engine: no facade fingerprint support
        sig = (tuple(sorted(e.eid for e in engine.msf_edges())),
               round(engine.msf_weight(), 9))
        machine = getattr(engine, "machine", None)
        if machine is not None:
            sig += (machine.total.depth, machine.total.work)
        return sig
    from repro.resilience import checks
    return (checks.state_fingerprint(engine._impl),
            tuple(sorted(engine.msf_ids())),
            round(engine.msf_weight(), 9))


#: Minimum interleaved pairs per backend-equivalence row.  One pair per
#: arm order, plus a tiebreaker: enough for a meaningful median while
#: keeping the wide full-profile rows under ~half a minute.
CMP_MIN_PAIRS = 3


def _paired_backend_ratio(spec: dict, ops, other: str) -> dict:
    """Interleaved scalar-vs-``other`` pairs; median-of-ratios estimate.

    The original best-of-N-per-arm scheme timed one whole arm after the
    other, which on 1-CPU hosts let slow drift (thermal, steal) land
    entirely on the second arm -- the same bias the resilience-overhead
    row exhibited, and how a ~1.0x parallel row once measured 0.39x at
    the tail of a long full profile.  Here each pair runs both backends
    back to back, arm order alternating per pair, and the reported
    ratio is the median of per-pair ratios; long-period host noise
    cancels within a pair instead of accumulating across arms.
    Signatures for the bit-identity gate come from the first pair (the
    replay is deterministic, so any pair would do).
    """
    machines: dict[str, object] = {}
    sigs: dict[str, object] = {}
    best: dict[str, float] = {}

    def _one(backend: str) -> float:
        bspec = dict(spec, backend=backend)
        engine, core_style, m = _build(bspec, machine=machines.get(backend))
        machines[backend] = m
        t0 = time.perf_counter()
        _replay(engine, ops, core_style)
        d = time.perf_counter() - t0
        if backend not in sigs:
            sigs[backend] = _equiv_signature(engine, core_style)
        _release(engine)
        best[backend] = min(best.get(backend, d), d)
        return d

    ratios: list[float] = []
    pairs = 0
    spent = 0.0
    while (spent < 1.2 or pairs < CMP_MIN_PAIRS) and pairs < 12:
        order = (other, "scalar") if pairs % 2 else ("scalar", other)
        d = {bk: _one(bk) for bk in order}
        spent += d["scalar"] + d[other]
        ratios.append(d["scalar"] / d[other])
        pairs += 1
    return {
        "ratio": statistics.median(ratios),
        "identical": sigs["scalar"] == sigs[other],
        "scalar_s": best["scalar"],
        "other_s": best[other],
        "pairs": pairs,
    }


def measure_columnar_equivalence(specs: dict, engines=None):
    """Paired scalar/columnar replay: bit-identity plus same-run ratio.

    Replays each gated row's exact op stream on a fresh engine per
    backend and compares the end states (forest edge ids, ``msf_weight``,
    the facade ``state_fingerprint``, and PRAM ``depth``/``work`` where
    measured).  Timing runs through :func:`_paired_backend_ratio`
    (interleaved pairs, median-of-ratios), so the recorded ratio is free
    of the cross-host noise that makes committed-baseline wall-clock
    comparisons unreliable *and* of same-run arm-order drift.  Returns
    None (section omitted) when numpy is absent.
    """
    try:
        import numpy  # noqa: F401
    except ImportError:
        print(f"  skipped: numpy not installed ({_arena_state()})")
        return None
    rows: dict[str, dict] = {}
    for name in COLUMNAR_ROWS:
        spec = specs.get(name)
        if spec is None or (engines and name not in engines):
            continue
        ops = _ops_for(spec)
        pair = _paired_backend_ratio(spec, ops, "columnar")
        arms = {"scalar": {"seconds": pair["scalar_s"]},
                "columnar": {"seconds": pair["other_s"]}}
        identical = pair["identical"]
        ratio = pair["ratio"]
        rows[name] = {
            "n": spec["n"],
            "workload": spec["workload"],
            "updates": len(ops),
            "scalar_updates_per_s": round(
                len(ops) / arms["scalar"]["seconds"], 2),
            "columnar_updates_per_s": round(
                len(ops) / arms["columnar"]["seconds"], 2),
            "columnar_speedup": round(ratio, 3),
            "bit_identical": identical,
            "pairs": pair["pairs"],
            "estimator": "median-of-ratios",
        }
        print(f"  {name:<22} n={spec['n']:<5} scalar "
              f"{len(ops) / arms['scalar']['seconds']:10.1f} upd/s  "
              f"columnar {len(ops) / arms['columnar']['seconds']:10.1f} "
              f"upd/s  ratio {ratio:5.2f}x  identical={identical}")
    return rows


def columnar_failures(rows) -> list[str]:
    """Absolute gates for the columnar section (both modes): the paired
    replay must be bit-identical, and the same-run wall-clock ratio must
    stay above :data:`COLUMNAR_RATIO_FLOOR`."""
    if rows is None:  # numpy absent: nothing measured, nothing gated
        return []
    failures: list[str] = []
    for name, row in rows.items():
        if not row["bit_identical"]:
            failures.append(
                f"{name}: columnar backend diverged from scalar "
                f"(forests/weight/fingerprint/depth/work must be "
                f"bit-identical)")
        if row["columnar_speedup"] < COLUMNAR_RATIO_FLOOR:
            failures.append(
                f"{name}: columnar/scalar ratio "
                f"{row['columnar_speedup']}x < {COLUMNAR_RATIO_FLOOR}x "
                f"floor (same-run pair)")
    return failures


# ---------------------------------------------------------------------------
# compiled backend equivalence (PR 8)
# ---------------------------------------------------------------------------

#: rows replayed under both backends; every pair must be bit-identical
#: and the wide-Jcap rows must clear their hard speedup bars
COMPILED_ROWS = ("facade-sparsified", "parallel-core-fast", "seq-core-wide",
                 "seq-core-wide-churn")
#: compiled/scalar floor on the *narrow* gated rows: their residual time
#: is facade / PRAM-simulator Python above the backend seam (measured
#: ~1.0-1.3x after the PR 9 plumbing port; EXPERIMENTS.md E9), so they
#: gate bit-identity plus catastrophe (same rationale as the columnar
#: floor)
COMPILED_RATIO_FLOOR = 0.5
#: hard same-run speedup bar on ``seq-core-wide``: the deletion-heavy
#: wide-Jcap shape is *the* regime the compiled tier exists for (column
#: sweeps over every long list plus MWR gamma/argmin scans, all Theta(J)
#: python loops under the scalar backend), so a compiled tier that fails
#: 2x here is not pulling its weight.  Measured ~4.7x at PR 8 and ~6.9x
#: after the PR 9 plumbing port; see EXPERIMENTS.md E9.
COMPILED_WIDE_MIN = 2.0
#: hard same-run speedup bar on ``seq-core-wide-churn`` (full profile
#: only -- at quick sizes the pair is inside host noise, the
#: ``CLUSTER_QUICK`` ``gate_speedup=False`` precedent): dense churn over
#: a wide Jcap is the serving-traffic regime the PR 9 structural
#: plumbing (batched charges, C-side splay/transition walks,
#: sparse-aware mirror scans) targets; measured ~2x on the dev host
#: against ~1.2x before the port.
COMPILED_CHURN_MIN = 1.5


def measure_compiled_equivalence(specs: dict, engines=None, *,
                                 gate_churn: bool = True):
    """Paired scalar/compiled replay: bit-identity plus same-run ratio.

    The compiled twin of :func:`measure_columnar_equivalence` -- fresh
    engine per backend, identical op stream, interleaved pairs with a
    median-of-ratios estimate (:func:`_paired_backend_ratio`) so the
    recorded ratio carries neither cross-host noise nor same-run
    arm-order drift.  Returns None (section omitted) when the native
    extension is not built.
    ``gate_churn=False`` (the quick profile) drops the hard
    :data:`COMPILED_CHURN_MIN` bar on ``seq-core-wide-churn`` -- at
    smoke sizes the pair sits inside host noise -- while keeping its
    bit-identity gate hot.
    """
    from repro.core import compiled as _compiled
    if not _compiled.HAVE_COMPILED:
        print(f"  skipped: native extension not built "
              f"(python -m repro.core.compiled.build; {_arena_state()})")
        return None
    rows: dict[str, dict] = {}
    for name in COMPILED_ROWS:
        spec = specs.get(name)
        if spec is None or (engines and name not in engines):
            continue
        ops = _ops_for(spec)
        pair = _paired_backend_ratio(spec, ops, "compiled")
        arms = {"scalar": {"seconds": pair["scalar_s"]},
                "compiled": {"seconds": pair["other_s"]}}
        identical = pair["identical"]
        ratio = pair["ratio"]
        rows[name] = {
            "n": spec["n"],
            "workload": spec["workload"],
            "updates": len(ops),
            "scalar_updates_per_s": round(
                len(ops) / arms["scalar"]["seconds"], 2),
            "compiled_updates_per_s": round(
                len(ops) / arms["compiled"]["seconds"], 2),
            "compiled_speedup": round(ratio, 3),
            "bit_identical": identical,
            "gate_churn": gate_churn and name == "seq-core-wide-churn",
            "pairs": pair["pairs"],
            "estimator": "median-of-ratios",
        }
        print(f"  {name:<22} n={spec['n']:<5} scalar "
              f"{len(ops) / arms['scalar']['seconds']:10.1f} upd/s  "
              f"compiled {len(ops) / arms['compiled']['seconds']:10.1f} "
              f"upd/s  ratio {ratio:5.2f}x  identical={identical}")
    return rows


def compiled_failures(rows) -> list[str]:
    """Absolute gates for the compiled section (both modes): bit-identity
    on every row, the catastrophe floor on the small rows, and the hard
    :data:`COMPILED_WIDE_MIN` speedup on the wide-Jcap row."""
    if rows is None:  # extension absent: nothing measured, nothing gated
        return []
    failures: list[str] = []
    for name, row in rows.items():
        if not row["bit_identical"]:
            failures.append(
                f"{name}: compiled backend diverged from scalar "
                f"(forests/weight/fingerprint/depth/work must be "
                f"bit-identical)")
        if name == "seq-core-wide":
            if row["compiled_speedup"] < COMPILED_WIDE_MIN:
                failures.append(
                    f"{name}: compiled/scalar ratio "
                    f"{row['compiled_speedup']}x < {COMPILED_WIDE_MIN}x "
                    f"bar (same-run pair; the wide-Jcap deletion shape "
                    f"is the compiled tier's acceptance regime)")
        elif row.get("gate_churn"):
            if row["compiled_speedup"] < COMPILED_CHURN_MIN:
                failures.append(
                    f"{name}: compiled/scalar ratio "
                    f"{row['compiled_speedup']}x < {COMPILED_CHURN_MIN}x "
                    f"bar (same-run pair; wide-Jcap dense churn is the "
                    f"structural-plumbing acceptance regime of PR 9)")
        elif row["compiled_speedup"] < COMPILED_RATIO_FLOOR:
            failures.append(
                f"{name}: compiled/scalar ratio "
                f"{row['compiled_speedup']}x < {COMPILED_RATIO_FLOOR}x "
                f"floor (same-run pair)")
    return failures


# ---------------------------------------------------------------------------
# durability overhead (PR 10)
# ---------------------------------------------------------------------------

#: allowed WAL-on wall-clock overhead on the gated serving row.  The
#: durable path per committed batch is one SQLite-WAL transaction plus a
#: cadence-amortized snapshot; batching keeps the per-op cost inside
#: this bar (DESIGN |S| 4: durability must not change what the
#: measurement layer records, and must stay cheap enough that E-series
#: runs can leave it on).
DURABILITY_OVERHEAD_TOL = 0.05
#: engine row whose configuration the durable pair drives (the churn
#: workload shape of the ``facade-sparsified`` row, scaled up so the
#: stream fills many 64-op batches -- at the row's native step count a
#: single batch would commit and the pair would time nothing but noise)
DURABILITY_ROW = "facade-sparsified"
DURABILITY_STEP_SCALE = 25
DURABILITY_BATCH = 64
DURABILITY_SNAPSHOT_EVERY = 8


def measure_durability_overhead(specs: dict, engines=None):
    """WAL-on vs WAL-off on the batched serving front.

    Both arms drive the identical churn stream through a ``BatchedMSF``
    over the :data:`DURABILITY_ROW` engine configuration (sparsified,
    deferred consistency, ``DURABILITY_BATCH``-op batches); the *on* arm
    adds ``durability="wal"`` with the :data:`DURABILITY_SNAPSHOT_EVERY`
    snapshot cadence into a private temporary directory.

    The **gated** overhead number is *attributed in-run*: each on-arm
    wraps its ``_durable_commit`` and ``_write_durable_snapshot`` calls
    with a timer, and overhead = durable_time / (total - total_durable).
    Numerator and denominator share one run's noise environment, so
    host drift cancels by construction -- a wall-clock A/B ratio on a
    shared host swings +-15% per run, far beyond a 5% bar.  Noise can
    only *inflate* the attribution, so the minimum across runs is the
    estimator.  The paired off-arms remain for the reported throughput
    and to prove the streams end bit-identical; the first on-arm's
    directory is additionally **restored** after the timed window and
    must reproduce the live fronts' ``state_fingerprint`` -- an
    overhead number for a WAL that cannot restore would be meaningless.
    """
    import shutil
    import tempfile

    from repro import BatchedMSF
    from repro.resilience import checks
    from repro.workloads import churn
    spec = specs.get(DURABILITY_ROW)
    if spec is None or (engines and DURABILITY_ROW not in engines):
        return None
    steps = spec["steps"] * DURABILITY_STEP_SCALE
    ops = list(churn(spec["n"], steps, seed=7))
    fps: dict[str, object] = {}
    best: dict[str, float] = {}
    attributed: list[float] = []

    def _one(mode: str) -> float:
        tmp = (tempfile.mkdtemp(prefix="repro-bench-wal-")
               if mode == "on" else None)
        durable = ({"durability": "wal", "durable_dir": tmp,
                    "snapshot_every": DURABILITY_SNAPSHOT_EVERY}
                   if mode == "on" else {})
        front = BatchedMSF(spec["n"], sparsify=True,
                           batch_size=DURABILITY_BATCH, pool_size=1,
                           consistency="deferred", **durable)
        spent_durable = [0.0]
        if mode == "on":
            def _timed(fn):
                def wrapper(*a, **kw):
                    t0 = time.perf_counter()
                    try:
                        return fn(*a, **kw)
                    finally:
                        spent_durable[0] += time.perf_counter() - t0
                return wrapper
            front._durable_commit = _timed(front._durable_commit)
            front._write_durable_snapshot = _timed(
                front._write_durable_snapshot)
        t0 = time.perf_counter()
        _replay(front, ops, False)
        d = time.perf_counter() - t0
        if mode == "on":
            attributed.append(spent_durable[0] / (d - spent_durable[0]))
        try:
            if mode not in fps:
                fps[mode] = checks.state_fingerprint(front)
                if mode == "on":
                    from repro.persist import restore
                    front.close()
                    restored, _rep = restore(
                        tmp, snapshot_every=DURABILITY_SNAPSHOT_EVERY)
                    fps["restore"] = checks.state_fingerprint(restored)
                    restored.close()
        finally:
            front.close()
            _release(front._impl)
            if tmp is not None:
                shutil.rmtree(tmp, ignore_errors=True)
        best[mode] = min(best.get(mode, d), d)
        return d

    pairs = 0
    spent = 0.0
    while (spent < 2.5 or pairs < 5) and pairs < 12:
        order = ("on", "off") if pairs % 2 else ("off", "on")
        d = {mode: _one(mode) for mode in order}
        spent += d["off"] + d["on"]
        pairs += 1
    overhead = min(attributed)
    identical = fps["off"] == fps["on"] == fps["restore"]
    row = {
        "n": spec["n"],
        "workload": "churn",
        "updates": len(ops),
        "batch_size": DURABILITY_BATCH,
        "snapshot_every": DURABILITY_SNAPSHOT_EVERY,
        "off_updates_per_s": round(len(ops) / best["off"], 2),
        "on_updates_per_s": round(len(ops) / best["on"], 2),
        "overhead_pct": round(100.0 * overhead, 2),
        "restore_identical": identical,
        "pairs": pairs,
        "estimator": "min-attributed-in-run",
    }
    print(f"  {DURABILITY_ROW:<22} n={spec['n']:<5} off "
          f"{row['off_updates_per_s']:10.1f} upd/s  on "
          f"{row['on_updates_per_s']:10.1f} upd/s  overhead "
          f"{row['overhead_pct']:+.1f}%  restore_identical={identical}")
    return {DURABILITY_ROW: row}


def durability_failures(rows) -> list[str]:
    """Absolute gates for the durability section (both modes): the WAL-on
    arm must restore bit-identically and its wall-clock overhead must
    stay under :data:`DURABILITY_OVERHEAD_TOL`."""
    if rows is None:
        return []
    failures: list[str] = []
    for name, row in rows.items():
        if not row["restore_identical"]:
            failures.append(
                f"{name}: durable restore diverged from the live front "
                f"(WAL-on/off/restored fingerprints must be bit-identical)")
        if row["overhead_pct"] > 100.0 * DURABILITY_OVERHEAD_TOL:
            failures.append(
                f"{name}: WAL-on overhead {row['overhead_pct']:.1f}% > "
                f"{DURABILITY_OVERHEAD_TOL:.0%} (min attributed "
                f"in-run durable time)")
    return failures


# ---------------------------------------------------------------------------
# baseline lookup and comparison
# ---------------------------------------------------------------------------

def latest_baseline(exclude: Path | None = None) -> Path | None:
    """The most recent committed BENCH_PR<k>.json (highest k)."""
    best, best_k = None, -1
    for p in REPO_ROOT.glob("BENCH_*.json"):
        if exclude is not None and p.resolve() == exclude.resolve():
            continue
        m = re.search(r"(\d+)", p.stem)
        k = int(m.group(1)) if m else 0
        if k > best_k:
            best, best_k = p, k
    return best


def compare(current: dict, baseline: dict, tolerance: float) -> list[str]:
    """Return a list of regression messages (empty == pass)."""
    failures: list[str] = []
    for name, cur in current.items():
        base = baseline.get(name)
        if base is None:
            continue
        if base.get("workload") != cur.get("workload") or \
                base.get("n") != cur.get("n") or \
                base.get("backend", "scalar") != cur.get("backend", "scalar"):
            continue  # workload redefined; not comparable
        floor = base["updates_per_s"] * (1.0 - tolerance)
        if cur["updates_per_s"] < floor:
            failures.append(
                f"{name}: {cur['updates_per_s']:.1f} upd/s < "
                f"{floor:.1f} (baseline {base['updates_per_s']:.1f} "
                f"- {tolerance:.0%})")
        for q in ("depth", "work"):
            b, c = base.get(q), cur.get(q)
            if b is None or c is None or b == 0:
                continue
            if abs(c - b) > tolerance * b:
                failures.append(
                    f"{name}: {q} drifted {b} -> {c} "
                    f"(> {tolerance:.0%}; model quantities should be stable)")
    return failures


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------

def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--quick", action="store_true",
                    help="measure only the quick (CI smoke) profile")
    ap.add_argument("--check", action="store_true",
                    help="compare against the last committed BENCH_*.json "
                         "instead of writing a new file")
    ap.add_argument("--tolerance", type=float, default=0.15,
                    help="allowed relative regression (default 0.15)")
    ap.add_argument("--engines", nargs="*", default=None,
                    help="restrict to these engine names")
    ap.add_argument("-o", "--out", default=str(REPO_ROOT / "BENCH_PR10.json"),
                    help="output file (default BENCH_PR10.json)")
    args = ap.parse_args(argv)

    out_path = Path(args.out)
    meta = host_meta()
    print(_describe_host(meta))
    result = {"schema": SCHEMA,
              "created": time.strftime("%Y-%m-%dT%H:%M:%S"),
              "tolerance": args.tolerance,
              "host": meta}

    if not args.quick:
        print("== full profile ==")
        result["engines"] = measure_profile(FULL, args.engines)
    print("== quick profile ==")
    result["quick_engines"] = measure_profile(QUICK, args.engines)
    print("== resilience overhead (disarmed sites + cheap self-checks) ==")
    result["resilience_overhead"] = measure_resilience_overhead(
        QUICK if args.quick else FULL, args.engines)
    over = overhead_failures(result["resilience_overhead"])
    if args.engines is None or "cluster-sharded" in args.engines:
        print("== sharded serving cluster (bit-identity + speedup) ==")
        result["cluster"] = measure_cluster(
            CLUSTER_QUICK if args.quick else CLUSTER_FULL)
        over += cluster_failures(result["cluster"])
    print("== columnar backend (bit-identity + same-run ratio) ==")
    columnar_rows = measure_columnar_equivalence(
        QUICK if args.quick else FULL, args.engines)
    if columnar_rows is not None:
        result["columnar"] = columnar_rows
    over += columnar_failures(columnar_rows)
    print("== compiled backend (bit-identity + same-run ratio) ==")
    compiled_rows = measure_compiled_equivalence(
        QUICK if args.quick else FULL, args.engines,
        gate_churn=not args.quick)
    if compiled_rows is not None:
        result["compiled"] = compiled_rows
    over += compiled_failures(compiled_rows)
    print("== durability overhead (WAL on vs off + restore identity) ==")
    durability_rows = measure_durability_overhead(
        QUICK if args.quick else FULL, args.engines)
    if durability_rows is not None:
        result["durability_overhead"] = durability_rows
    over += durability_failures(durability_rows)

    if args.check:
        base_path = latest_baseline()
        if base_path is None:
            print("no committed BENCH_*.json baseline; nothing to check "
                  "(pass)")
            print(_describe_host(meta, "measured on"))
            return 1 if over else 0
        baseline = json.loads(base_path.read_text())
        failures: list[str] = list(over)
        for section in ("engines", "quick_engines"):
            if section in result and section in baseline:
                failures += compare(result[section], baseline[section],
                                    args.tolerance)
        print()
        print(_describe_host(meta, "measured on"))
        base_host = baseline.get("host")
        if base_host:
            print(_describe_host(base_host, f"baseline {base_path.name} on"))
            if base_host.get("cpu_count") != meta.get("cpu_count"):
                print(f"  note: CPU count changed "
                      f"({base_host.get('cpu_count')} -> "
                      f"{meta.get('cpu_count')}); wall-clock comparisons "
                      f"are cross-host")
        else:
            print(f"baseline {base_path.name} predates host metadata "
                  f"(schema {baseline.get('schema', '?')})")
        if failures:
            print(f"\nREGRESSIONS vs {base_path.name}:")
            for f in failures:
                print(f"  FAIL {f}")
            return 1
        print(f"\nOK: no regression vs {base_path.name} "
              f"(tolerance {args.tolerance:.0%}); resilience overhead "
              f"within {RES_OVERHEAD_TOL:.0%}")
        if "cluster" in result:
            print(f"cluster: bit-identical at pools "
                  f"{[p for p in result['cluster']['pools']]}, best speedup "
                  f"{result['cluster']['best_speedup']}x")
        return 0

    if over:  # absolute bars also gate the measure-and-write mode
        for f in over:
            print(f"  FAIL {f}")
        return 1

    out_path.write_text(json.dumps(result, indent=2) + "\n")
    print(f"\nwrote {out_path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
