"""E9 -- wall-clock sanity (pytest-benchmark timings).

Not a paper claim: anchors the op-count model in CPython seconds for each
engine at a few sizes, so readers can relate E1-E8's abstract costs to real
time on their machine.
"""

from __future__ import annotations

import pytest
from _common import banner, render_table

from repro import DynamicMSF
from repro.baselines.recompute import RecomputeMSF
from repro.baselines.scan import ScanDynamicMSF
from repro.core.par import ParallelDynamicMSF
from repro.core.seq_msf import SparseDynamicMSF
from repro.workloads import churn


def replay(engine, ops, core_style: bool):
    handles = {}
    idx = 0
    for op in ops:
        if op[0] == "ins":
            _t, u, v, w = op
            if core_style:
                handles[idx] = engine.insert_edge(u, v, w, eid=10_000 + idx)
            else:
                handles[idx] = engine.insert_edge(u, v, w)
        else:
            ref = op[1]
            h = handles.pop(ref)
            engine.delete_edge(h if core_style else h)
        idx += 1


ENGINES = {
    "seq-core": (lambda n: SparseDynamicMSF(n), True, 3),
    "scan-core": (lambda n: ScanDynamicMSF(n), True, 3),
    "parallel-core": (lambda n: ParallelDynamicMSF(n), True, 3),
    "facade-sequential": (lambda n: DynamicMSF(n, max_edges=4 * n), False, None),
    "facade-sparsified": (lambda n: DynamicMSF(n, sparsify=True), False, None),
    "recompute": (lambda n: RecomputeMSF(n), True, None),
}


@pytest.mark.parametrize("name", list(ENGINES))
@pytest.mark.parametrize("n", [256, 1024])
def test_e9_updates_per_second(benchmark, name, n):
    factory, core_style, max_degree = ENGINES[name]
    if name == "facade-sparsified" and n > 256:
        pytest.skip("sparsified facade timed at n=256 only (slow)")
    ops = list(churn(n, 150 if name != "facade-sparsified" else 60,
                     seed=5, max_degree=max_degree))

    def once():
        replay(factory(n), ops, core_style)

    benchmark.pedantic(once, iterations=1, rounds=3)
    benchmark.extra_info["updates"] = len(ops)


def run_experiment(fast: bool = False) -> str:
    import time
    n = 256 if fast else 1024
    rows = []
    for name, (factory, core_style, max_degree) in ENGINES.items():
        steps = 60 if name == "facade-sparsified" else 150
        size = 256 if name == "facade-sparsified" else n
        ops = list(churn(size, steps, seed=5, max_degree=max_degree))
        t0 = time.perf_counter()
        replay(factory(size), ops, core_style)
        dt = time.perf_counter() - t0
        rows.append([name, size, len(ops), round(dt, 3),
                     round(len(ops) / dt, 1)])
    table = render_table(["engine", "n", "updates", "seconds", "updates/s"],
                         rows, title="E9: wall-clock sanity (random churn)")
    return banner("E9 walltime", table)


if __name__ == "__main__":
    print(run_experiment())
