"""T1 -- the related-work comparison of the paper's introduction.

Analytic rows from the published bounds (no artifacts exist for the
comparator parallel algorithms), anchored by *measured* values for this
implementation: sequential elementary-ops per update and PRAM-measured
depth/work/processors.
"""

from __future__ import annotations

from _common import banner, drive_core_measured, drive_parallel_measured, render_table

from repro.baselines.models import evaluate_table
from repro.core.par import ParallelDynamicMSF
from repro.core.seq_msf import SparseDynamicMSF
from repro.workloads import adversarial_cuts


def measured_anchors(n: int = 1024, rounds: int = 40) -> dict:
    seq = SparseDynamicMSF(n)
    per = drive_core_measured(seq, adversarial_cuts(n, rounds),
                              want=lambda op: op[0] == "del")
    par = ParallelDynamicMSF(n)
    stats = drive_parallel_measured(par, adversarial_cuts(n, rounds))
    deletes = [s for s in stats if s.label == "delete"]
    return {
        "n": n,
        "seq_ops_max": per.max,
        "par_depth_max": max(s.depth for s in deletes),
        "par_work_max": max(s.work for s in deletes),
        "par_procs_max": max(s.processors for s in deletes),
        "violations": par.machine.total.violations,
    }


def run_experiment(fast: bool = False) -> str:
    n_table = 4096
    rows = [[r["name"], r["kind"], r["citation"],
             round(r["time"], 1),
             None if r["processors"] is None else round(r["processors"], 1),
             round(r["work"], 1), r["formula"]]
            for r in evaluate_table(n_table)]
    t1 = render_table(
        ["algorithm", "kind", "ref", "time@4096", "procs@4096",
         "work@4096", "bound"],
        rows, title=f"T1: related-work bounds evaluated at n={n_table}, m=1.5n")
    anchors = measured_anchors(256 if fast else 1024, 10 if fast else 40)
    t2 = render_table(
        ["measured anchor", "value"],
        [[k, v] for k, v in anchors.items()],
        title="T1 anchors: this implementation, worst-case deletion "
              "(adversarial mid-tree cuts)")
    return banner("Table 1", t1 + "\n\n" + t2)


def test_table1_anchor_benchmark(benchmark):
    result = benchmark.pedantic(measured_anchors, args=(256, 8),
                                iterations=1, rounds=3)
    assert result["violations"] == 0
    benchmark.extra_info.update(result)


if __name__ == "__main__":
    print(run_experiment())
