#!/usr/bin/env python3
"""Fault-injection soak campaigns (experiment E11).

Runs seeded :func:`repro.resilience.soak.run_campaign` campaigns across
the engine configurations, aggregates the per-campaign JSON reports, and
exits nonzero if any campaign fails its end-to-end contract -- an
injected fault that is neither detected-and-recovered nor provably
masked, a wrong answer surviving recovery, a dirty final audit, or a
recovered state that is not bit-identical (by
:func:`repro.resilience.checks.state_fingerprint`) to a never-faulted
twin.

The CI job runs ``--quick --seed 0`` (~1 min) and uploads the JSON
report as an artifact; the full profile sweeps more seeds and larger
streams.

Usage:
    python benchmarks/bench_soak.py                    # full profile
    python benchmarks/bench_soak.py --quick --seed 0
    python benchmarks/bench_soak.py --out soak.json
    python benchmarks/bench_soak.py --engine parallel --sparsify
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.resilience.soak import (run_campaign,  # noqa: E402
                                   run_crash_campaign)

#: (engine, sparsify) configurations; parallel streams are shorter (the
#: lockstep simulator is the cost driver) but flip machines to the
#: ``fast`` audit tier so the pram.* sites are reachable.
CONFIGS = [
    ("sequential", True),
    ("sequential", False),
    ("parallel", True),
    ("parallel", False),
]

PROFILES = {
    "full": dict(seeds=3, seq=dict(n=48, n_ops=320, n_faults=6),
                 par=dict(n=24, n_ops=160, n_faults=6),
                 mix=dict(n=48, n_ops=320, n_faults=6,
                          workload="worker_mix", shards=4,
                          cross_fraction=0.08),
                 dur=dict(n=48, n_ops=320, n_faults=6,
                          workload="restart_heavy", durability="wal",
                          snapshot_every=8),
                 crash=dict(n=48, n_ops=320, kills=4, snapshot_every=4)),
    "quick": dict(seeds=1, seq=dict(n=40, n_ops=240, n_faults=5),
                  par=dict(n=20, n_ops=100, n_faults=4),
                  mix=dict(n=40, n_ops=240, n_faults=5,
                           workload="worker_mix", shards=4,
                           cross_fraction=0.08),
                  dur=dict(n=40, n_ops=240, n_faults=5,
                           workload="restart_heavy", durability="wal",
                           snapshot_every=8),
                  crash=dict(n=40, n_ops=240, kills=3, snapshot_every=4)),
}


def run_soak(profile: str, base_seed: int, *, engines=None,
             sparsify=None) -> dict:
    prof = PROFILES[profile]
    campaigns = []
    t0 = time.perf_counter()
    for engine, sp in CONFIGS:
        if engines is not None and engine not in engines:
            continue
        if sparsify is not None and sp != sparsify:
            continue
        kw = prof["par"] if engine == "parallel" else prof["seq"]
        for s in range(prof["seeds"]):
            report = run_campaign(base_seed + s, engine=engine,
                                  sparsify=sp, **kw)
            campaigns.append(report)
            tag = f"{engine}/{'sparse' if sp else 'flat'}"
            verdict = "ok" if report["ok"] else "FAIL"
            print(f"  {tag:20s} seed={base_seed + s}: {verdict}  "
                  f"injected={report['n_injected']} "
                  f"detected={report['n_detected']} "
                  f"masked={report['n_masked']} "
                  f"wrong={report['wrong_answers']} "
                  f"sites={report['sites_hit']}")
    # the sharded serving profile (clustered ranges + cross-shard edges),
    # on the configuration the cluster's workers run: sequential+sparsify
    if (engines is None or "sequential" in engines) and sparsify in (
            None, True):
        for s in range(prof["seeds"]):
            report = run_campaign(base_seed + s, engine="sequential",
                                  sparsify=True, **prof["mix"])
            campaigns.append(report)
            verdict = "ok" if report["ok"] else "FAIL"
            print(f"  {'worker_mix/sparse':20s} seed={base_seed + s}: "
                  f"{verdict}  injected={report['n_injected']} "
                  f"detected={report['n_detected']} "
                  f"masked={report['n_masked']} "
                  f"wrong={report['wrong_answers']} "
                  f"sites={report['sites_hit']}")
    # the columnar backend adds the mirror-tearing ``columnar.col`` site;
    # only runs when numpy is importable (the backend's optional extra)
    if (engines is None or "sequential" in engines) and sparsify in (
            None, True):
        try:
            import numpy  # noqa: F401
        except ImportError:
            print("  columnar/sparse       skipped: numpy not installed")
        else:
            for s in range(prof["seeds"]):
                report = run_campaign(base_seed + s, engine="sequential",
                                      sparsify=True, backend="columnar",
                                      **prof["seq"])
                campaigns.append(report)
                verdict = "ok" if report["ok"] else "FAIL"
                print(f"  {'columnar/sparse':20s} seed={base_seed + s}: "
                      f"{verdict}  injected={report['n_injected']} "
                      f"detected={report['n_detected']} "
                      f"masked={report['n_masked']} "
                      f"wrong={report['wrong_answers']} "
                      f"sites={report['sites_hit']}")
    # the compiled backend adds the mirror-tearing ``compiled.kernel``
    # site; only runs when the native extension is built
    if (engines is None or "sequential" in engines) and sparsify in (
            None, True):
        from repro.core import compiled as _compiled
        if not _compiled.HAVE_COMPILED:
            print("  compiled/sparse       skipped: native extension "
                  "not built")
        else:
            for s in range(prof["seeds"]):
                report = run_campaign(base_seed + s, engine="sequential",
                                      sparsify=True, backend="compiled",
                                      **prof["seq"])
                campaigns.append(report)
                verdict = "ok" if report["ok"] else "FAIL"
                print(f"  {'compiled/sparse':20s} seed={base_seed + s}: "
                      f"{verdict}  injected={report['n_injected']} "
                      f"detected={report['n_detected']} "
                      f"masked={report['n_masked']} "
                      f"wrong={report['wrong_answers']} "
                      f"sites={report['sites_hit']}")
    # the durable WAL profile (restart_heavy churn/burst stream with the
    # crash-shaped ``wal.*``/``snapshot.write`` sites armed), ending in a
    # full close -> restore -> fingerprint-identity gate
    if (engines is None or "sequential" in engines) and sparsify in (
            None, True):
        for s in range(prof["seeds"]):
            report = run_campaign(base_seed + s, engine="sequential",
                                  sparsify=True, **prof["dur"])
            campaigns.append(report)
            verdict = "ok" if report["ok"] else "FAIL"
            restored = report["final"].get("durable", {}).get(
                "restore_fingerprint_match")
            print(f"  {'restart_heavy/wal':20s} seed={base_seed + s}: "
                  f"{verdict}  injected={report['n_injected']} "
                  f"detected={report['n_detected']} "
                  f"masked={report['n_masked']} "
                  f"wrong={report['wrong_answers']} "
                  f"restore_identical={restored} "
                  f"sites={report['sites_hit']}")
    elapsed = time.perf_counter() - t0
    n_ok = sum(1 for c in campaigns if c["ok"])
    agg = {
        "profile": profile,
        "base_seed": base_seed,
        "campaigns": len(campaigns),
        "campaigns_ok": n_ok,
        "injected": sum(c["n_injected"] for c in campaigns),
        "detected": sum(c["n_detected"] for c in campaigns),
        "masked": sum(c["n_masked"] for c in campaigns),
        "wrong_answers": sum(c["wrong_answers"] for c in campaigns),
        "unexpected_rejections": sum(c["unexpected_rejections"]
                                     for c in campaigns),
        "sites_hit": sorted({s for c in campaigns for s in c["sites_hit"]}),
        "mean_recovery_work": (
            sum(c["recovery_work"]["mean"] for c in campaigns
                if c["recovery_work"]["events"]) /
            max(1, sum(1 for c in campaigns
                       if c["recovery_work"]["events"]))),
        "elapsed_s": round(elapsed, 2),
        "ok": n_ok == len(campaigns) and len(campaigns) > 0,
        "reports": campaigns,
    }
    return agg


def run_crash(profile: str, base_seed: int) -> dict:
    """Crash-restart campaigns (experiment E12): SIGKILL a child process
    mid-batch, restart it, recover from the WAL, and gate on
    oracle-equal forest plus bit-identical fingerprints -- per scalar
    and (when the native extension is built) compiled backend."""
    from repro.core import compiled as _compiled
    prof = PROFILES[profile]
    backends = ["scalar"] + (["compiled"] if _compiled.HAVE_COMPILED
                             else [])
    campaigns = []
    t0 = time.perf_counter()
    for backend in backends:
        for s in range(prof["seeds"]):
            report = run_crash_campaign(base_seed + s, backend=backend,
                                        **prof["crash"])
            campaigns.append(report)
            verdict = "ok" if report["ok"] else "FAIL"
            final = report["final"]
            print(f"  {'crash/' + backend:20s} seed={base_seed + s}: "
                  f"{verdict}  rounds={len(report['rounds'])} "
                  f"kills={report['kills_fired']} "
                  f"oracle={final['oracle_match']} "
                  f"restore={final['restore_fingerprint_match']} "
                  f"digest={final['child_digest_match']}")
    if not _compiled.HAVE_COMPILED:
        print("  crash/compiled        skipped: native extension not built")
    elapsed = time.perf_counter() - t0
    n_ok = sum(1 for c in campaigns if c["ok"])
    return {
        "profile": profile,
        "mode": "crash",
        "base_seed": base_seed,
        "campaigns": len(campaigns),
        "campaigns_ok": n_ok,
        "kills_fired": sum(c["kills_fired"] for c in campaigns),
        "rounds": sum(len(c["rounds"]) for c in campaigns),
        "backends": backends,
        "elapsed_s": round(elapsed, 2),
        "ok": n_ok == len(campaigns) and len(campaigns) > 0,
        "reports": campaigns,
    }


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--quick", action="store_true",
                    help="CI-sized profile (~1 min)")
    ap.add_argument("--seed", type=int, default=0, help="base seed")
    ap.add_argument("--out", type=Path, default=None,
                    help="write the aggregate JSON report here")
    ap.add_argument("--engine", choices=["sequential", "parallel"],
                    default=None, help="restrict to one engine kind")
    ap.add_argument("--sparsify", action="store_true", default=None,
                    help="restrict to sparsified backends")
    ap.add_argument("--crash", action="store_true",
                    help="run the crash-restart (SIGKILL + WAL recovery) "
                         "campaign instead of the fault-injection soak")
    args = ap.parse_args(argv)

    profile = "quick" if args.quick else "full"
    if args.crash:
        print(f"crash-restart profile={profile} base_seed={args.seed}")
        agg = run_crash(profile, args.seed)
        print(f"\ncampaigns: {agg['campaigns_ok']}/{agg['campaigns']} ok; "
              f"rounds={agg['rounds']} kills_fired={agg['kills_fired']} "
              f"backends={agg['backends']} ({agg['elapsed_s']}s)")
        if args.out is not None:
            args.out.parent.mkdir(parents=True, exist_ok=True)
            args.out.write_text(json.dumps(agg, indent=1, default=repr))
            print(f"report -> {args.out}")
        if not agg["ok"]:
            print("FAIL: a crash-restart round lost or corrupted state",
                  flush=True)
            return 1
        print("OK: every SIGKILL recovered to an oracle-equal, "
              "bit-identical forest")
        return 0
    print(f"soak profile={profile} base_seed={args.seed}")
    agg = run_soak(profile, args.seed,
                   engines={args.engine} if args.engine else None,
                   sparsify=args.sparsify)
    print(f"\ncampaigns: {agg['campaigns_ok']}/{agg['campaigns']} ok; "
          f"injected={agg['injected']} detected={agg['detected']} "
          f"masked={agg['masked']} wrong_answers={agg['wrong_answers']} "
          f"mean_recovery_work={agg['mean_recovery_work']:.0f} "
          f"({agg['elapsed_s']}s)")
    print(f"sites hit: {agg['sites_hit']}")
    if args.out is not None:
        args.out.parent.mkdir(parents=True, exist_ok=True)
        args.out.write_text(json.dumps(agg, indent=1, default=repr))
        print(f"report -> {args.out}")
    if not agg["ok"]:
        print("FAIL: undetected corruption or unrecovered fault", flush=True)
        return 1
    print("OK: every fault detected-and-recovered or provably masked")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
